"""Fault-injection tests: chaos plans vs the fault-free oracle.

The resilience guarantee under test is *exactness*, not just survival:
distributed partition tasks are pure and their partials are reduced in
partition order, so any mix of injected failures, delays, retries, and
speculative reassignment must yield statistics **bitwise identical** to the
fault-free run with the same worker/partition configuration.  (Holding the
partition count fixed matters — changing it changes float summation order,
which is a different run, not a fault.)  Streaming-side, corrupt batches
must be quarantined with the right reason while the monitor's results match
an oracle monitor that never saw them.
"""

import os
import shutil
import signal
import subprocess
import sys
import time

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FeatureSpace, SliceLineConfig, slice_line
from repro.datasets import replay_batches
from repro.distributed import DistributedPForExecutor
from repro.distributed.accumulate import partitioned_slice_stats
from repro.exceptions import ConfigError, ExecutionError
from repro.obs import Tracer
from repro.resilience import (
    ChaosInjector,
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    map_with_retries,
    unit_hash,
)
from repro.resilience.chaos import (
    CORRUPTION_KINDS,
    corrupt_file,
    kill_process,
    make_corrupt_batch,
    pick_kill_delay,
    truncate_file,
)
from repro.serve import JobSpec, SliceService, frame_record, scan_wal
from repro.streaming import SliceMonitor
from tests.test_resilience import dyadic_problem


def no_sleep(_seconds):
    """Sleep stub: backoff delays add nothing to test wall-clock."""


def eval_problem(seed, n=400, num_slices=30):
    """One-hot data + random 2-predicate candidate slices for executors."""
    x0, errors = dyadic_problem(seed, n=n)
    space = FeatureSpace.from_matrix(x0)
    x = space.encode(x0)
    gen = np.random.default_rng(seed + 1)
    rows = []
    for _ in range(num_slices):
        pick = gen.choice(space.num_onehot, size=2, replace=False)
        row = np.zeros(space.num_onehot)
        row[pick] = 1
        rows.append(row)
    return x, errors, sp.csr_matrix(np.array(rows))


def tracked_slices(x0, errors, k=4):
    """A top-K slice set to broadcast through the accumulate path."""
    from repro.core import slice_line

    return slice_line(x0, errors, SliceLineConfig(k=k)).top_slices


# ---------------------------------------------------------------------------
# determinism of the injection primitives
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_unit_hash_range_and_stability(self):
        values = [unit_hash(7, "fail", ("p", i), 1) for i in range(200)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert values == [unit_hash(7, "fail", ("p", i), 1) for i in range(200)]
        assert unit_hash(7, "fail", 0) != unit_hash(8, "fail", 0)

    def test_fault_plan_validation(self):
        with pytest.raises(ConfigError):
            FaultPlan(failure_rate=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(corrupt_rate=-0.1)
        with pytest.raises(ConfigError):
            FaultPlan(delay_s=-1.0)
        with pytest.raises(ConfigError):
            FaultPlan(max_faults_per_task=-1)

    def test_same_seed_same_failures(self):
        decisions = []
        for _ in range(2):
            injector = ChaosInjector(
                FaultPlan(seed=5, failure_rate=0.4), sleep=no_sleep
            )
            outcome = []
            for task in range(50):
                try:
                    injector.perturb(("scope", task), 1)
                    outcome.append(False)
                except InjectedFault:
                    outcome.append(True)
            decisions.append(outcome)
        assert decisions[0] == decisions[1]
        assert any(decisions[0])
        assert not all(decisions[0])

    def test_faults_capped_per_task(self):
        injector = ChaosInjector(
            FaultPlan(seed=0, failure_rate=1.0, max_faults_per_task=2),
            sleep=no_sleep,
        )
        for attempt in (1, 2):
            with pytest.raises(InjectedFault):
                injector.perturb(("t", 0), attempt)
        injector.perturb(("t", 0), 3)  # past the cap: always clean
        assert injector.injected_failures == 2

    def test_corrupt_batch_deterministic(self):
        batches = list(replay_batches(*dyadic_problem(50, n=300), 50))
        one = ChaosInjector(FaultPlan(seed=3, corrupt_rate=0.5))
        two = ChaosInjector(FaultPlan(seed=3, corrupt_rate=0.5))
        for batch in batches:
            a = one.corrupt_batch(batch)
            b = two.corrupt_batch(batch)
            assert (a is batch) == (b is batch)
            if a is not batch:
                assert np.array_equal(
                    np.asarray(a.errors), np.asarray(b.errors), equal_nan=True
                )
        assert one.corrupted_batches == two.corrupted_batches

    def test_zero_rate_passes_everything_through(self):
        injector = ChaosInjector(FaultPlan(seed=1), sleep=no_sleep)
        batches = list(replay_batches(*dyadic_problem(51, n=200), 50))
        for task in range(20):
            injector.perturb(("s", task), 1)
        assert all(injector.corrupt_batch(b) is b for b in batches)
        assert injector.injected_failures == 0
        assert injector.corrupted_batches == 0

    def test_unknown_corruption_kind_rejected(self):
        batch = next(iter(replay_batches(*dyadic_problem(52, n=100), 100)))
        with pytest.raises(ConfigError):
            make_corrupt_batch(batch, "gamma-rays")


# ---------------------------------------------------------------------------
# retry machinery
# ---------------------------------------------------------------------------


class TestRetry:
    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ConfigError):
            RetryPolicy(straggler_timeout_s=0.0)

    def test_backoff_deterministic_and_capped(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_multiplier=2.0, backoff_cap_s=0.3
        )
        delays = [policy.backoff_delay(3, attempt) for attempt in (1, 2, 3, 9)]
        assert delays == [policy.backoff_delay(3, a) for a in (1, 2, 3, 9)]
        assert all(d <= 0.3 for d in delays)
        assert all(d > 0 for d in delays)

    @pytest.mark.parametrize("num_threads", [1, 4])
    def test_results_in_item_order(self, num_threads):
        results, stats = map_with_retries(
            lambda item, attempt: item * 10,
            range(17),
            num_threads=num_threads,
            sleep=no_sleep,
        )
        assert results == [i * 10 for i in range(17)]
        assert stats.attempts == 17 and stats.retries == 0

    @pytest.mark.parametrize("num_threads", [1, 4])
    def test_flaky_tasks_retried(self, num_threads):
        chaos = ChaosInjector(
            FaultPlan(seed=9, failure_rate=0.5, max_faults_per_task=2),
            sleep=no_sleep,
        )

        def task(item, attempt):
            chaos.perturb(("flaky", item), attempt)
            return item + 1

        results, stats = map_with_retries(
            task, range(20), num_threads=num_threads, sleep=no_sleep
        )
        assert results == [i + 1 for i in range(20)]
        assert stats.retries > 0
        assert stats.attempts == 20 + stats.retries

    def test_exhaustion_raises_execution_error(self):
        def always_fails(item, attempt):
            raise ValueError(f"boom {item}/{attempt}")

        with pytest.raises(ExecutionError, match="after 3 attempts"):
            map_with_retries(
                always_fails,
                [0],
                policy=RetryPolicy(max_attempts=3),
                sleep=no_sleep,
            )

    def test_straggler_reassigned(self):
        import threading

        stalled = threading.Event()

        def task(item, attempt):
            if item == 1 and attempt == 1:
                stalled.wait(5.0)  # released when the backup wins
            return item

        policy = RetryPolicy(straggler_timeout_s=0.05)
        results, stats = map_with_retries(
            task, range(3), policy=policy, num_threads=4, sleep=no_sleep
        )
        stalled.set()
        assert results == [0, 1, 2]
        assert stats.stragglers_reassigned == 1


# ---------------------------------------------------------------------------
# distributed paths: faulted == fault-free, bitwise
# ---------------------------------------------------------------------------


class TestDistributedChaos:
    def test_executor_exact_under_failures(self):
        x, errors, slices = eval_problem(60)
        baseline = DistributedPForExecutor(num_nodes=2, executors_per_node=2)
        reference = baseline.evaluate(x, errors, slices, 2, 0.95)
        faulty = DistributedPForExecutor(
            num_nodes=2,
            executors_per_node=2,
            retry=RetryPolicy(backoff_base_s=0.0, backoff_cap_s=0.0),
            chaos=ChaosInjector(
                FaultPlan(seed=13, failure_rate=0.3), sleep=no_sleep
            ),
        )
        out = faulty.evaluate(x, errors, slices, 2, 0.95)
        assert np.array_equal(out, reference)
        assert faulty.chaos.injected_failures > 0
        assert faulty.last_retry_stats.retries == faulty.chaos.injected_failures

    def test_executor_publishes_retry_span(self):
        x, errors, slices = eval_problem(61)
        tracer = Tracer()
        executor = DistributedPForExecutor(
            num_nodes=2,
            executors_per_node=2,
            retry=RetryPolicy(backoff_base_s=0.0, backoff_cap_s=0.0),
            chaos=ChaosInjector(
                FaultPlan(seed=2, failure_rate=0.5), sleep=no_sleep
            ),
        )
        executor.evaluate(x, errors, slices, 2, 0.95, tracer=tracer)
        span = tracer.find("executor.dist-pfor.evaluate")
        assert span.attrs["retries"] == executor.last_retry_stats.retries
        assert span.attrs["attempts"] == executor.last_retry_stats.attempts

    def test_executor_straggler_reassignment(self):
        x, errors, slices = eval_problem(62)
        baseline = DistributedPForExecutor(num_nodes=2, executors_per_node=2)
        reference = baseline.evaluate(x, errors, slices, 2, 0.95)
        faulty = DistributedPForExecutor(
            num_nodes=2,
            executors_per_node=2,
            retry=RetryPolicy(straggler_timeout_s=0.05),
            chaos=ChaosInjector(
                FaultPlan(seed=4, delay_rate=0.3, delay_s=0.4)
            ),
        )
        out = faulty.evaluate(x, errors, slices, 2, 0.95)
        assert np.array_equal(out, reference)
        assert faulty.chaos.injected_delays > 0
        assert faulty.last_retry_stats.stragglers_reassigned > 0

    def test_unwinnable_plan_exhausts(self):
        x, errors, slices = eval_problem(63)
        executor = DistributedPForExecutor(
            num_nodes=2,
            executors_per_node=2,
            retry=RetryPolicy(
                max_attempts=2, backoff_base_s=0.0, backoff_cap_s=0.0
            ),
            chaos=ChaosInjector(
                FaultPlan(seed=0, failure_rate=1.0, max_faults_per_task=10),
                sleep=no_sleep,
            ),
        )
        with pytest.raises(ExecutionError, match="dist-pfor partition"):
            executor.evaluate(x, errors, slices, 2, 0.95)

    def test_accumulate_exact_under_failures(self):
        x0, errors = dyadic_problem(64, n=500)
        slices = tracked_slices(x0, errors)
        reference = partitioned_slice_stats(
            x0, errors, slices, num_partitions=4, num_threads=2
        )
        faulted = partitioned_slice_stats(
            x0, errors, slices, num_partitions=4, num_threads=2,
            retry=RetryPolicy(backoff_base_s=0.0, backoff_cap_s=0.0),
            chaos=ChaosInjector(
                FaultPlan(seed=21, failure_rate=0.3), sleep=no_sleep
            ),
        )
        for name in ("sizes", "errors", "sq_errors", "max_errors"):
            assert np.array_equal(
                getattr(faulted, name), getattr(reference, name)
            )

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 10**6),
        failure_rate=st.floats(0.0, 0.3),
        data_seed=st.integers(0, 50),
    )
    def test_chaos_sweep_distributed(self, seed, failure_rate, data_seed):
        """Random fault plans never change distributed statistics."""
        x, errors, slices = eval_problem(70 + data_seed, n=250, num_slices=12)
        baseline = DistributedPForExecutor(num_nodes=2, executors_per_node=2)
        reference = baseline.evaluate(x, errors, slices, 2, 0.95)
        faulty = DistributedPForExecutor(
            num_nodes=2,
            executors_per_node=2,
            retry=RetryPolicy(backoff_base_s=0.0, backoff_cap_s=0.0),
            chaos=ChaosInjector(
                FaultPlan(seed=seed, failure_rate=failure_rate),
                sleep=no_sleep,
            ),
        )
        assert np.array_equal(
            faulty.evaluate(x, errors, slices, 2, 0.95), reference
        )


# ---------------------------------------------------------------------------
# streaming path: corrupt batches quarantined, results match the oracle
# ---------------------------------------------------------------------------


class TestStreamingChaos:
    def run_monitors(self, data_seed, chaos_seed, corrupt_rate):
        """Feed a corrupted stream to one monitor, the healthy subset to
        another; returns (faulted tick, oracle tick, quarantine count)."""
        x0, errors = dyadic_problem(data_seed, n=600)
        batches = list(replay_batches(x0, errors, 100))
        injector = ChaosInjector(FaultPlan(seed=chaos_seed, corrupt_rate=corrupt_rate))
        config = SliceLineConfig(k=3)
        faulted = SliceMonitor(config=config, window_size=len(batches))
        oracle = SliceMonitor(config=config, window_size=len(batches))
        for i, batch in enumerate(batches):
            # The first batch is delivered clean: it is what teaches the
            # monitor the stream's feature count (a feature-mismatch
            # corruption of the very first batch is undetectable by design —
            # there is no expectation to mismatch yet).
            delivered = batch if i == 0 else injector.corrupt_batch(batch)
            record = faulted.ingest(delivered)
            if delivered is batch:
                assert record is None
            else:
                assert record is not None
            if record is None:
                assert oracle.ingest(batch) is None
        return faulted, oracle, injector.corrupted_batches

    def test_corrupted_stream_matches_healthy_oracle(self):
        faulted, oracle, corrupted = self.run_monitors(80, 8, 0.4)
        assert corrupted > 0
        assert len(faulted.quarantine) == corrupted
        tick = faulted.tick()
        ref = oracle.tick()
        assert np.array_equal(tick.result.top_stats, ref.result.top_stats)
        assert np.array_equal(
            tick.result.top_slices_encoded, ref.result.top_slices_encoded
        )
        assert tick.num_rows == ref.num_rows

    def test_quarantine_reasons_are_vocabulary(self):
        faulted, _, corrupted = self.run_monitors(81, 3, 0.6)
        assert corrupted > 0
        for record in faulted.quarantine.records:
            assert record.reason in CORRUPTION_KINDS

    @settings(max_examples=10, deadline=None)
    @given(
        chaos_seed=st.integers(0, 10**6),
        corrupt_rate=st.floats(0.0, 0.2),
        data_seed=st.integers(0, 50),
    )
    def test_chaos_sweep_streaming(self, chaos_seed, corrupt_rate, data_seed):
        """Random corrupt-batch plans never change the monitor's answer."""
        faulted, oracle, _ = self.run_monitors(
            100 + data_seed, chaos_seed, corrupt_rate
        )
        if len(faulted.window) == 0:
            return  # everything corrupted: nothing to rank either way
        tick = faulted.tick()
        ref = oracle.tick()
        assert np.array_equal(tick.result.top_stats, ref.result.top_stats)
        assert np.array_equal(
            tick.result.top_slices_encoded, ref.result.top_slices_encoded
        )


# ---------------------------------------------------------------------------
# process- and storage-level chaos (crash durability)


class TestProcessChaos:
    """Kill -9, torn journals, and corrupt spill files vs the oracle run.

    Same exactness bar as the other chaos families: whatever the fault,
    the recovered service must end with results bitwise identical to a
    fault-free run — or a typed quarantine, never silent corruption.
    """

    def test_pick_kill_delay_deterministic_and_bounded(self):
        a = pick_kill_delay(7, ("job", 3), 0.1, 0.9)
        b = pick_kill_delay(7, ("job", 3), 0.1, 0.9)
        assert a == b
        assert 0.1 <= a <= 0.9
        assert pick_kill_delay(8, ("job", 3), 0.1, 0.9) != a
        with pytest.raises(ConfigError):
            pick_kill_delay(7, "x", 1.0, 0.5)

    def test_kill_process_handles_dead_pid(self):
        victim = subprocess.Popen([sys.executable, "-c", "pass"])
        victim.wait()
        assert kill_process(victim.pid) is False

    def test_truncate_file(self, tmp_path):
        path = str(tmp_path / "f.bin")
        with open(path, "wb") as handle:
            handle.write(b"0123456789")
        assert truncate_file(path, 4) == 6
        assert open(path, "rb").read() == b"0123"
        assert truncate_file(path, 100) == 0
        with pytest.raises(ConfigError):
            truncate_file(path, -1)

    def test_corrupt_file_deterministic(self, tmp_path):
        path = str(tmp_path / "f.bin")
        original = bytes(range(64))
        with open(path, "wb") as handle:
            handle.write(original)
        offsets = corrupt_file(path, seed=3, nflips=4)
        mangled = open(path, "rb").read()
        assert mangled != original
        assert all(0 <= off < 64 for off in offsets)
        # Replaying the same seed over the mangled bytes undoes the XOR.
        assert corrupt_file(path, seed=3, nflips=4) == offsets
        assert open(path, "rb").read() == original

    def test_wal_truncation_boundaries_recover_bitwise(
        self, tmp_path, planted_dataset
    ):
        """Service recovery over strategically torn journals stays exact."""
        x0, errors, _ = planted_dataset
        state = str(tmp_path / "state")
        with SliceService(state_dir=state, num_workers=1) as service:
            record = service.submit(JobSpec(x0=x0, errors=errors))
            baseline = service.result(record.job_id, timeout=60)
        wal = os.path.join(state, "wal", "journal.wal")
        data = open(wal, "rb").read()
        records, _, quarantined = scan_wal(data)
        assert not quarantined
        last_frame = len(frame_record(records[-1]))
        # Mid-header, mid-body, one byte short, and clean-boundary cuts.
        cuts = sorted(
            {
                len(data) - last_frame + 3,
                len(data) - last_frame // 2,
                len(data) - 1,
                len(data) - last_frame,
            }
        )
        for cut in cuts:
            trial = str(tmp_path / f"trial-{cut}")
            shutil.copytree(state, trial)
            truncate_file(os.path.join(trial, "wal", "journal.wal"), cut)
            recovered = SliceService(state_dir=trial, num_workers=1)
            try:
                assert recovered.wait(timeout=60)
                result = recovered.result(record.job_id, timeout=60)
            finally:
                recovered.shutdown()
            assert [s.predicates for s in result.top_slices] == [
                s.predicates for s in baseline.top_slices
            ]
            assert [s.score for s in result.top_slices] == [
                s.score for s in baseline.top_slices
            ]

    def test_cache_spill_deletion_forces_rerun(
        self, tmp_path, planted_dataset
    ):
        x0, errors, _ = planted_dataset
        state = str(tmp_path / "state")
        with SliceService(state_dir=state, num_workers=1) as service:
            record = service.submit(JobSpec(x0=x0, errors=errors))
            baseline = service.result(record.job_id, timeout=60)
        os.unlink(os.path.join(state, "cache", f"{record.fingerprint}.npz"))
        recovered = SliceService(state_dir=state, num_workers=1)
        try:
            # The completed job lost its result, but a fresh submission
            # re-runs and lands on the identical answer.
            resubmit = recovered.submit(JobSpec(x0=x0, errors=errors))
            result = recovered.result(resubmit.job_id, timeout=60)
        finally:
            recovered.shutdown()
        assert [s.score for s in result.top_slices] == [
            s.score for s in baseline.top_slices
        ]

    def test_service_sigkill_mid_run_recovers_bitwise(self, tmp_path):
        """kill -9 the whole service process; a restart finishes the job.

        The driver subprocess journals the submission and dispatch, then
        dies mid-enumeration.  Recovery re-admits the orphan at the front
        and the finished result matches a fault-free in-process run.
        """
        state = str(tmp_path / "state")
        driver = tmp_path / "driver.py"
        driver.write_text(
            "import sys\n"
            "import numpy as np\n"
            "from repro.serve import SliceService, JobSpec\n"
            "rng = np.random.default_rng(777)\n"
            "x0 = rng.integers(1, 6, size=(20000, 20))\n"
            "errors = (rng.random(20000) < 0.3).astype(float)\n"
            "service = SliceService(state_dir=sys.argv[1], num_workers=1)\n"
            "record = service.submit(JobSpec(x0=x0, errors=errors))\n"
            "print('submitted', flush=True)\n"
            "service.result(record.job_id, timeout=300)\n"
        )
        process = subprocess.Popen(
            [sys.executable, str(driver), state],
            stdout=subprocess.PIPE,
            env={**os.environ, "PYTHONPATH": "src"},
        )
        try:
            wal = os.path.join(state, "wal", "journal.wal")
            deadline = time.time() + 60
            while time.time() < deadline:
                if os.path.exists(wal):
                    records, _, _ = scan_wal(open(wal, "rb").read())
                    if any(r["type"] == "dispatch" for r in records):
                        break
                time.sleep(0.05)
            else:
                pytest.fail("driver never dispatched the job")
            time.sleep(0.4)
            assert kill_process(process.pid)
        finally:
            process.wait(timeout=30)
            if process.stdout is not None:
                process.stdout.close()
        assert process.returncode == -signal.SIGKILL

        rng = np.random.default_rng(777)
        x0 = rng.integers(1, 6, size=(20000, 20))
        errors = (rng.random(20000) < 0.3).astype(float)
        recovered = SliceService(state_dir=state, num_workers=1)
        try:
            orphans = [
                record
                for record in recovered.jobs.values()
                if record.recovered
            ]
            assert len(orphans) == 1
            result = recovered.result(orphans[0].job_id, timeout=120)
        finally:
            recovered.shutdown()
        baseline = slice_line(x0, errors)
        assert [s.predicates for s in result.top_slices] == [
            s.predicates for s in baseline.top_slices
        ]
        assert [s.score for s in result.top_slices] == [
            s.score for s in baseline.top_slices
        ]
        assert np.array_equal(result.top_stats, baseline.top_stats)
