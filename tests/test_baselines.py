"""Tests for the baseline slice finders (oracle, SliceFinder, tree, clustering)."""

import numpy as np
import pytest

from repro.baselines import (
    ClusteringSlicer,
    DecisionTreeSlicer,
    SliceFinderBaseline,
    enumerate_all_slices,
    naive_top_k,
)


class TestNaiveOracle:
    def test_enumerates_full_lattice(self, tiny_x0, tiny_errors):
        slices = list(enumerate_all_slices(tiny_x0, tiny_errors, alpha=0.9))
        # levels 1..3 over domains (2,3,2): 7 + (6+4+6) + 12 non-empty max
        levels = {s.level for s in slices}
        assert levels == {1, 2, 3}
        # every basic slice with support shows up
        level1 = [s for s in slices if s.level == 1]
        assert len(level1) == 7

    def test_max_level_caps(self, tiny_x0, tiny_errors):
        slices = list(enumerate_all_slices(tiny_x0, tiny_errors, 0.9, max_level=1))
        assert all(s.level == 1 for s in slices)

    def test_top_k_constraints(self, planted_dataset):
        x0, errors, _ = planted_dataset
        top = naive_top_k(x0, errors, k=5, sigma=10, alpha=0.95)
        assert len(top) <= 5
        for s in top:
            assert s.size >= 10 and s.score > 0
        scores = [s.score for s in top]
        assert scores == sorted(scores, reverse=True)

    def test_finds_planted(self, planted_dataset):
        x0, errors, predicates = planted_dataset
        top = naive_top_k(x0, errors, k=1, sigma=10, alpha=0.95)
        assert dict(top[0].predicates) == predicates


class TestSliceFinderBaseline:
    def test_finds_planted_slice(self, planted_dataset):
        x0, errors, predicates = planted_dataset
        finder = SliceFinderBaseline(k=4, max_level=3)
        found = finder.find(x0, errors)
        assert found, "baseline found nothing"
        keys = [frozenset(c.predicates.items()) for c in found]
        target = frozenset(predicates.items())
        # accepts the planted slice or a coarser ancestor of it
        assert any(key <= target for key in keys)

    def test_accepted_slices_are_significant(self, planted_dataset):
        x0, errors, _ = planted_dataset
        finder = SliceFinderBaseline(k=6, max_level=2)
        for cand in finder.find(x0, errors):
            assert cand.p_value < finder.significance_level
            assert cand.effect_size >= finder.effect_size_threshold

    def test_dominance_prevents_redundant_children(self, planted_dataset):
        x0, errors, _ = planted_dataset
        finder = SliceFinderBaseline(k=10, max_level=3)
        found = finder.find(x0, errors)
        keys = [frozenset(c.predicates.items()) for c in found]
        for i, a in enumerate(keys):
            for b in keys[i + 1 :]:
                assert not (a < b), "accepted a dominated finer slice"

    def test_level_wise_termination_counts_levels(self, planted_dataset):
        x0, errors, _ = planted_dataset
        finder = SliceFinderBaseline(k=1, max_level=3)
        finder.find(x0, errors)
        # k=1 found on an early level: the search stops before level 3
        assert len(finder.evaluated_per_level) <= 3

    def test_invalid_k(self, tiny_x0, tiny_errors):
        from repro.exceptions import ValidationError
        with pytest.raises(ValidationError):
            SliceFinderBaseline(k=0).find(tiny_x0, tiny_errors)


class TestDecisionTreeSlicer:
    def test_leaves_partition_rows(self, planted_dataset):
        x0, errors, _ = planted_dataset
        slicer = DecisionTreeSlicer(max_depth=3, min_leaf_size=20)
        slicer.find(x0, errors)
        leaves = slicer.root_.leaves()
        assert sum(leaf.size for leaf in leaves) == x0.shape[0]

    def test_slices_are_disjoint(self, planted_dataset):
        x0, errors, _ = planted_dataset
        slicer = DecisionTreeSlicer(max_depth=3, min_leaf_size=20, k=5)
        found = slicer.find(x0, errors)
        masks = []
        for leaf in found:
            mask = np.ones(x0.shape[0], dtype=bool)
            for f, v in leaf.predicates.items():
                mask &= x0[:, f] == v
            # tree paths include negative branches, so the predicate mask
            # over-approximates; leaves themselves are disjoint by size
            masks.append(leaf.size)
        assert sum(masks) <= x0.shape[0]

    def test_returns_elevated_leaves_only(self, planted_dataset):
        x0, errors, _ = planted_dataset
        overall = errors.mean()
        found = DecisionTreeSlicer(max_depth=3, min_leaf_size=20).find(x0, errors)
        for leaf in found:
            assert leaf.average_error > overall

    def test_homogeneous_errors_yield_nothing(self, tiny_x0):
        found = DecisionTreeSlicer(min_leaf_size=1, max_depth=2).find(
            tiny_x0, np.ones(8)
        )
        assert found == []

    def test_respects_min_leaf_size(self, planted_dataset):
        x0, errors, _ = planted_dataset
        slicer = DecisionTreeSlicer(max_depth=4, min_leaf_size=50)
        slicer.find(x0, errors)
        for leaf in slicer.root_.leaves():
            assert leaf.size >= 50 or leaf.predicates == {}


class TestClusteringSlicer:
    def test_finds_high_error_description(self, rng):
        # two well-separated populations, one with high error
        n = 400
        x0 = np.column_stack([
            np.concatenate([np.ones(n // 2), np.full(n // 2, 2)]),
            rng.integers(1, 3, size=n),
        ]).astype(np.int64)
        errors = np.concatenate([np.full(n // 2, 1.0), np.zeros(n // 2)])
        slicer = ClusteringSlicer(num_clusters=4, k=2, purity_threshold=0.7)
        found = slicer.find(x0, errors)
        assert found
        # the worst cluster description should pin feature 0 to value 1
        assert any(c.predicates.get(0) == 1 for c in found)

    def test_no_elevated_clusters_returns_empty(self, rng):
        x0 = np.column_stack([rng.integers(1, 3, size=100) for _ in range(2)])
        found = ClusteringSlicer(num_clusters=2).find(x0, np.full(100, 0.5))
        assert found == []

    def test_purity_reported(self, rng):
        x0 = np.column_stack([rng.integers(1, 3, size=200) for _ in range(2)])
        errors = (x0[:, 0] == 1).astype(float)
        found = ClusteringSlicer(num_clusters=4, k=3).find(x0, errors)
        for c in found:
            assert 0.0 <= c.description_purity <= 1.0
