"""Unit tests for sparse-matrix helpers and blocked matrices."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ShapeError, ValidationError
from repro.linalg import (
    BlockedMatrix,
    as_csr,
    density,
    ensure_vector,
    is_sparse,
    row_partitions,
    to_dense,
    vstack_rows,
)


class TestAsCsr:
    def test_from_dense(self):
        out = as_csr(np.eye(3))
        assert sp.issparse(out) and out.format == "csr"

    def test_from_coo(self):
        out = as_csr(sp.coo_matrix(np.eye(3)))
        assert out.format == "csr"

    def test_dtype_conversion(self):
        out = as_csr(np.eye(2, dtype=np.int64), dtype=np.float64)
        assert out.dtype == np.float64


class TestDensity:
    def test_density_values(self):
        assert density(np.eye(4)) == pytest.approx(0.25)
        assert density(sp.csr_matrix((3, 3))) == 0.0
        assert density(np.zeros((0, 5))) == 0.0


class TestEnsureVector:
    def test_flattens_column_vector(self):
        out = ensure_vector(np.ones((4, 1)), 4)
        assert out.shape == (4,)

    def test_wrong_length(self):
        with pytest.raises(ShapeError):
            ensure_vector([1.0, 2.0], 3)

    def test_2d_rejected(self):
        with pytest.raises(ShapeError):
            ensure_vector(np.ones((2, 2)))


class TestVstack:
    def test_sparse_plus_dense(self):
        out = vstack_rows(sp.csr_matrix(np.eye(2)), np.ones((1, 2)))
        assert out.shape == (3, 2)
        assert sp.issparse(out)

    def test_dense_plus_dense(self):
        out = vstack_rows(np.eye(2), np.eye(2))
        assert isinstance(out, np.ndarray) and out.shape == (4, 2)

    def test_column_mismatch(self):
        with pytest.raises(ShapeError):
            vstack_rows(np.eye(2), np.eye(3))

    def test_is_sparse(self):
        assert is_sparse(sp.eye(2)) and not is_sparse(np.eye(2))

    def test_to_dense_roundtrip(self):
        m = np.arange(6.0).reshape(2, 3)
        np.testing.assert_allclose(to_dense(sp.csr_matrix(m)), m)


class TestRowPartitions:
    def test_balanced(self):
        parts = row_partitions(10, 3)
        assert parts[0][0] == 0 and parts[-1][1] == 10
        sizes = [stop - start for start, stop in parts]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_more_parts_than_rows(self):
        parts = row_partitions(2, 5)
        assert parts == [(0, 1), (1, 2)]

    def test_invalid(self):
        with pytest.raises(ValidationError):
            row_partitions(5, 0)


class TestBlockedMatrix:
    @pytest.fixture
    def matrix(self):
        gen = np.random.default_rng(0)
        return sp.csr_matrix((gen.random((20, 6)) < 0.4).astype(float))

    def test_roundtrip(self, matrix):
        blocked = BlockedMatrix.from_matrix(matrix, 4)
        assert blocked.num_blocks == 4
        np.testing.assert_allclose(
            blocked.to_matrix().toarray(), matrix.toarray()
        )

    def test_shape(self, matrix):
        blocked = BlockedMatrix.from_matrix(matrix, 3)
        assert blocked.shape == matrix.shape

    def test_block_row_ranges_cover(self, matrix):
        blocked = BlockedMatrix.from_matrix(matrix, 3)
        ranges = blocked.block_row_ranges()
        assert ranges[0][0] == 0 and ranges[-1][1] == 20
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b == c

    def test_broadcast_matmul_equals_full(self, matrix):
        rhs = sp.csr_matrix(np.random.default_rng(1).random((6, 3)))
        blocked = BlockedMatrix.from_matrix(matrix, 4)
        partials = blocked.broadcast_matmul(rhs)
        stacked = sp.vstack(partials).toarray()
        np.testing.assert_allclose(stacked, (matrix @ rhs).toarray())

    def test_broadcast_matmul_dim_mismatch(self, matrix):
        blocked = BlockedMatrix.from_matrix(matrix, 2)
        with pytest.raises(ValidationError):
            blocked.broadcast_matmul(sp.eye(5))

    def test_map_reduce_sum(self, matrix):
        blocked = BlockedMatrix.from_matrix(matrix, 5)
        total = blocked.map_reduce(
            lambda b: np.asarray(b.sum(axis=0)).ravel(), lambda a, b: a + b
        )
        np.testing.assert_allclose(total, np.asarray(matrix.sum(axis=0)).ravel())

    def test_map_reduce_empty_raises(self):
        with pytest.raises(ValidationError):
            BlockedMatrix().map_reduce(lambda b: b, lambda a, b: a)
