"""Ablation: priority evaluation and parent pre-filtering (DESIGN.md 3b).

Not a paper figure — an ablation of this implementation's own design
choices: evaluating candidates in descending upper-bound order with
mid-level re-pruning (the paper's "priority-based enumeration" future
work).  Expected: identical top-K, fewer or equal candidates evaluated.
"""

from repro.core import slice_line
from repro.experiments import bench_config, format_table

from conftest import bench_dataset, run_once


def test_priority_evaluation_ablation(benchmark):
    bundle = bench_dataset("uscensus")
    base = bench_config("uscensus", bundle.num_rows, max_level=3)

    def run_both():
        with_priority = slice_line(
            bundle.x0, bundle.errors, base, num_threads=4
        )
        without = slice_line(
            bundle.x0, bundle.errors,
            base.with_overrides(priority_evaluation=False),
            num_threads=4,
        )
        return with_priority, without

    with_priority, without = run_once(benchmark, run_both)

    rows = [
        {
            "config": label,
            "evaluated": result.total_evaluated,
            "skipped": sum(ls.skipped_by_priority for ls in result.level_stats),
            "seconds": round(result.total_seconds, 2),
            "top1": round(result.top_slices[0].score, 4)
            if result.top_slices else None,
        }
        for label, result in (
            ("priority on", with_priority),
            ("priority off", without),
        )
    ]
    print()
    print(format_table(rows, title="Ablation: priority evaluation (uscensus)"))

    # identical results, never more work
    assert with_priority.total_evaluated <= without.total_evaluated
    import numpy as np

    np.testing.assert_allclose(
        with_priority.top_stats, without.top_stats, rtol=1e-12
    )
