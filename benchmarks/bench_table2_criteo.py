"""Table 2: Criteo slice-enumeration statistics.

Regenerates the per-level table (candidates, valid slices, elapsed time)
for the CriteoD21-like ultra-sparse dataset.  The defining phenomena:
only a tiny fraction of the (huge) one-hot column space satisfies the
minimum-support constraint at level 1, and from level 2 on pruning keeps
candidate counts close to the true number of valid slices.
"""

from repro.experiments import bench_config, format_table, run_sliceline

from conftest import bench_dataset, run_once


def test_table2_criteo_enumeration(benchmark):
    bundle = bench_dataset("criteod21")
    cfg = bench_config("criteod21", bundle.num_rows, max_level=6)
    result, report = run_once(
        benchmark,
        lambda: run_sliceline(
            bundle.x0, bundle.errors, cfg, dataset="criteod21", num_threads=4
        ),
    )
    rows = [
        {
            "level": level,
            "candidates": evaluated,
            "valid": valid,
            "elapsed_s": round(seconds, 2),
        }
        for level, evaluated, valid, seconds in zip(
            report.levels, report.evaluated, report.valid,
            report.elapsed_seconds,
        )
    ]
    print()
    print(format_table(rows, title="Table 2: Criteo enumeration statistics"))

    # level 1: a tiny fraction of a very wide one-hot space passes sigma
    level1 = rows[0]
    assert level1["candidates"] > 100_000, "one-hot space should be huge"
    assert level1["valid"] < 2_000, "only head values satisfy min support"
    assert level1["valid"] / level1["candidates"] < 0.01

    # deeper levels: candidates stay close to valid slices (paper's Table 2)
    for row in rows[1:]:
        if row["candidates"] > 100:
            assert row["valid"] >= 0.25 * row["candidates"]


def test_table2_benchmark(benchmark):
    """Timed: the full Criteo-like enumeration (levels 1-6)."""
    from repro.core import slice_line

    bundle = bench_dataset("criteod21")
    cfg = bench_config("criteod21", bundle.num_rows, max_level=6)
    result = benchmark.pedantic(
        lambda: slice_line(bundle.x0, bundle.errors, cfg, num_threads=4),
        rounds=2, iterations=1,
    )
    assert result is not None
