"""Figure 3: pruning-technique ablation on Salaries 2x2.

(a) slices evaluated per level under the five pruning configurations;
(b) runtime per configuration.  Expected shape: every added pruning
technique reduces (never increases) the evaluated-slice counts, with the
unpruned + undeduplicated arm growing exponentially (the paper's ran out
of memory after 4 levels; we cap it at 4 levels for the same reason).
"""

from repro.experiments import bench_config, format_table, run_pruning_ablation
from repro.core import PruningConfig

from conftest import bench_dataset, run_once

#: unpruned arms are exponential: cap at the level where the paper OOM'd
UNPRUNED_LEVEL_CAP = 4


def _run_ablation():
    bundle = bench_dataset("salaries2x2")
    reports = {}
    for label, arm in PruningConfig.ablation_arms().items():
        cap = UNPRUNED_LEVEL_CAP if not arm.by_score else None
        cfg = bench_config(
            "salaries2x2", bundle.num_rows, k=4, max_level=cap,
        ).with_overrides(pruning=arm, priority_evaluation=False)
        reports.update(
            run_pruning_ablation(
                bundle.x0, bundle.errors, cfg, arms={label: arm}
            )
        )
    return reports


def test_fig3a_slices_per_level(benchmark):
    reports = run_once(benchmark, _run_ablation)
    rows = []
    for label, report in reports.items():
        for level, evaluated in zip(report.levels, report.evaluated):
            rows.append({"config": label, "level": level, "evaluated": evaluated})
    print()
    print(format_table(rows, title="Figure 3(a): evaluated slices per level"))

    totals = {lbl: r.total_evaluated for lbl, r in reports.items()}
    # Figure 3 shape: strictly more work as pruning is removed
    assert totals["all"] <= totals["no-parents"]
    assert totals["no-parents"] <= totals["no-parents-no-score"]
    assert totals["no-parents-no-score"] <= totals["no-parents-no-score-no-size"]
    # over the shared first 4 levels the duplicate-polluted arm dominates
    def first_levels(label):
        report = reports[label]
        return sum(
            e for lv, e in zip(report.levels, report.evaluated)
            if lv <= UNPRUNED_LEVEL_CAP
        )
    assert first_levels("none") >= first_levels("no-parents-no-score-no-size")

    # all arms agree on the top-K scores (pruning is lossless)
    score_sets = {
        tuple(round(s, 9) for s in r.top_scores) for r in reports.values()
    }
    assert len(score_sets) == 1


def test_fig3b_runtime(benchmark):
    """Timed: the fully-pruned configuration (the paper's fastest arm)."""
    bundle = bench_dataset("salaries2x2")
    cfg = bench_config("salaries2x2", bundle.num_rows, k=4)

    from repro.core import slice_line

    result = benchmark(lambda: slice_line(bundle.x0, bundle.errors, cfg))
    assert result.top_slices

    reports = _run_ablation()
    rows = [
        {"config": lbl, "seconds": round(r.total_seconds, 4)}
        for lbl, r in reports.items()
    ]
    print()
    print(format_table(rows, title="Figure 3(b): runtime per configuration"))
