"""Pair-candidate pipeline: measured speedup behind an exactness gate.

The chunk-local pair pipeline of :mod:`repro.core.pairs` (parallel join
chunks fusing merge/validity/pruning with chunk-local dedup, packed
distinct-parent counting, geometric accumulators) is a pure performance
optimization — it must produce *bitwise identical* top-K slices, bounds,
and counters as :func:`~repro.core.pairs.reference_pair_candidates`, the
preserved pre-pipeline implementation.  This bench asserts exactly that
(the exactness gate: any divergence fails the suite) and **reports** the
measured numbers: end-to-end seconds per arm plus the non-evaluate
(join + dedup + prune) share from the ``level{L}.pairs`` spans and the
per-stage split from the ``join/dedup/prune/keys_seconds`` counter
gauges, written to ``benchmarks/BENCH_pairs.json``.

Arms:

* ``reference`` — the driver patched to the preserved pre-pipeline
  implementation (the pre-optimization baseline);
* ``serial`` — the new pipeline at ``pair_parallelism=1``;
* ``parallel`` — the new pipeline at ``pair_parallelism=4``.

The headline number is ``pairs_speedup``: reference vs parallel on the
summed ``level{L}.pairs`` seconds (the non-evaluate share of the run).
On ``kdd98`` — feature-rich, level-2 at this bench scale emits the same
~696k-candidate shape the kernel bench exercises — the packed parent
counting alone is worth several-fold.

Workloads: ``kdd98`` and ``adult`` (the paper's canonical workload).
Override with ``BENCH_PAIRS_WORKLOADS=adult`` for the CI smoke run.
"""

import contextlib
import json
import os
import pathlib

import numpy as np

import repro.core.algorithm as algorithm_mod
from repro.core import slice_line
from repro.core.pairs import reference_pair_candidates
from repro.experiments import bench_config
from repro.obs import EXECUTION_FIELDS

from conftest import bench_dataset, run_once

ARMS = ("reference", "serial", "parallel")
PARALLEL_WIDTH = 4

#: override with a comma-separated list (the CI smoke runs just ``adult``)
WORKLOADS = tuple(
    os.environ.get("BENCH_PAIRS_WORKLOADS", "kdd98,adult").split(",")
)
OUT_PATH = pathlib.Path(__file__).parent / "BENCH_pairs.json"
#: untraced timing samples per arm, interleaved so drift hits all equally
SAMPLES = 2


def _reference_entry(*args, workspace=None, pair_parallelism=1, **kwargs):
    """Driver-compatible wrapper over the preserved reference pipeline."""
    return reference_pair_candidates(*args, **kwargs)


@contextlib.contextmanager
def reference_pipeline():
    """Patch the enumeration driver onto the pre-pipeline implementation."""
    original = algorithm_mod.get_pair_candidates
    algorithm_mod.get_pair_candidates = _reference_entry
    try:
        yield
    finally:
        algorithm_mod.get_pair_candidates = original


def _assert_bitwise_identical(ref, other, name):
    """The exactness gate: any pipeline divergence fails the bench."""
    assert np.array_equal(ref.top_stats, other.top_stats), name
    assert np.array_equal(ref.top_slices_encoded, other.top_slices_encoded), name
    assert [s.predicates for s in ref.top_slices] == [
        s.predicates for s in other.top_slices
    ], name
    ref_levels = ref.counters.levels
    other_levels = other.counters.levels
    assert len(ref_levels) == len(other_levels), name
    for ref_record, other_record in zip(ref_levels, other_levels):
        ref_dict = ref_record.to_dict()
        other_dict = other_record.to_dict()
        for field in EXECUTION_FIELDS:
            ref_dict.pop(field, None)
            other_dict.pop(field, None)
        assert ref_dict == other_dict, name


def _pairs_seconds(result):
    """Summed ``level{L}.pairs`` span seconds — the non-evaluate share."""
    total = 0.0
    for record in result.counters.levels:
        if record.level < 2:
            continue
        span = result.trace.find(f"level{record.level}.pairs")
        if span is not None:
            total += span.elapsed_seconds
    return total


def _stage_split(result):
    """Per-level join/dedup/prune/keys split from the counter gauges."""
    out = {}
    for record in result.counters.levels:
        if record.level < 2 or record.pairs_generated == 0:
            continue
        out[record.level] = {
            "pairs_generated": record.pairs_generated,
            "candidates_emitted": record.candidates_emitted,
            "join_seconds": record.join_seconds,
            "dedup_seconds": record.dedup_seconds,
            "prune_seconds": record.prune_seconds,
            "keys_seconds": record.keys_seconds,
            "join_chunks": record.join_chunks,
            "join_parallelism": record.join_parallelism,
        }
    return out


def _bench_workload(name):
    bundle = bench_dataset(name)
    cfg = bench_config(name, bundle.num_rows)

    def run(arm, trace=None):
        if arm == "reference":
            with reference_pipeline():
                return slice_line(
                    bundle.x0, bundle.errors, cfg, num_threads=1, trace=trace
                )
        width = 1 if arm == "serial" else PARALLEL_WIDTH
        return slice_line(
            bundle.x0, bundle.errors,
            cfg.with_overrides(pair_parallelism=width),
            num_threads=1, trace=trace,
        )

    # Traced arms: the exactness gate + per-level pairs spans.
    traced = {arm: run(arm, trace=True) for arm in ARMS}
    for arm in ARMS[1:]:
        _assert_bitwise_identical(traced["reference"], traced[arm], f"{name}:{arm}")

    # Untraced arms, interleaved per round: end-to-end timing.  Sub-second
    # workloads get extra rounds so the min is not noise-dominated.
    samples = {arm: [] for arm in ARMS}
    for arm in ARMS:
        samples[arm].append(run(arm).total_seconds)
    rounds = SAMPLES if max(s[0] for s in samples.values()) > 2.0 else 5
    for _ in range(rounds - 1):
        for arm in ARMS:
            samples[arm].append(run(arm).total_seconds)

    reference_seconds = min(samples["reference"])
    reference_pairs = _pairs_seconds(traced["reference"])
    arms = {}
    for arm in ARMS:
        seconds = min(samples[arm])
        pairs_seconds = _pairs_seconds(traced[arm])
        arms[arm] = {
            "seconds": seconds,
            "speedup_vs_reference": (
                reference_seconds / seconds if seconds else 0.0
            ),
            "pairs_seconds": pairs_seconds,
            "pairs_speedup_vs_reference": (
                reference_pairs / pairs_seconds if pairs_seconds else 0.0
            ),
            "levels": _stage_split(traced[arm]),
        }

    level2 = traced["reference"].counters.level(2)
    return {
        "workload": name,
        "num_rows": traced["reference"].num_rows,
        "num_onehot_columns": traced["reference"].num_onehot_columns,
        "level2_pairs_generated": level2.pairs_generated,
        "level2_candidates_emitted": level2.candidates_emitted,
        "arms": arms,
        "pairs_speedup": {
            "reference_pairs_seconds": reference_pairs,
            "serial_pairs_seconds": arms["serial"]["pairs_seconds"],
            "parallel_pairs_seconds": arms["parallel"]["pairs_seconds"],
            "speedup": arms["parallel"]["pairs_speedup_vs_reference"],
        },
    }


def test_pair_pipeline_speedup(benchmark):
    records = run_once(
        benchmark, lambda: [_bench_workload(name) for name in WORKLOADS]
    )
    document = {"schema": "repro.bench_pairs/v1", "workloads": records}
    OUT_PATH.write_text(json.dumps(document, indent=2) + "\n")

    print(f"\npair pipeline (exactness-gated), written to {OUT_PATH}")
    for record in records:
        print(
            f"{record['workload']}: {record['num_rows']} rows, "
            f"{record['level2_pairs_generated']} level-2 pairs, "
            f"{record['level2_candidates_emitted']} emitted"
        )
        for arm, data in record["arms"].items():
            print(
                f"  {arm:<10} {data['seconds']:>8.3f}s e2e "
                f"({data['speedup_vs_reference']:>5.2f}x), "
                f"pairs {data['pairs_seconds']:>7.3f}s "
                f"({data['pairs_speedup_vs_reference']:>5.2f}x)"
            )
        headline = record["pairs_speedup"]
        print(
            f"  non-evaluate speedup: "
            f"{headline['reference_pairs_seconds']:.3f}s -> "
            f"{headline['parallel_pairs_seconds']:.3f}s "
            f"({headline['speedup']:.2f}x)"
        )
    assert len(records) == len(WORKLOADS)
    for record in records:
        assert record["level2_pairs_generated"] > 0, (
            f"{record['workload']} never reached the pair join"
        )
