"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` file regenerates one table or figure of the paper's
evaluation (see DESIGN.md section 3).  Dataset scales are reduced so the
whole suite runs on a laptop in minutes; the *shapes* reported by the
paper (who wins, what grows, where crossovers fall) are asserted, not the
absolute numbers.  Run with ``pytest benchmarks/ --benchmark-only -s`` to
see the regenerated tables.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.datasets import load_dataset
from repro.obs import run_to_dict

#: per-dataset row scales used by the benchmark suite (laptop budget)
BENCH_SCALES = {
    "adult": 0.3,
    "covtype": 0.02,
    "kdd98": 0.01,
    "uscensus": 0.004,
    "criteod21": 0.05,
    "salaries": 1.0,
    "salaries2x2": 1.0,
}

_CACHE: dict[str, object] = {}


def bench_dataset(name: str, seed: int = 0):
    """Load (and memoize) a dataset at its benchmark scale."""
    key = f"{name}:{seed}"
    if key not in _CACHE:
        _CACHE[key] = load_dataset(name, scale=BENCH_SCALES.get(name), seed=seed)
    return _CACHE[key]


@pytest.fixture(scope="session")
def datasets():
    """Accessor fixture so benches share the memoized datasets."""
    return bench_dataset


def run_once(benchmark, fn):
    """Execute *fn* once under the benchmark fixture.

    The table-regenerating tests use this so they are timed AND still run
    under ``--benchmark-only`` (which skips tests without a benchmark).
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


#: observability documents collected by benches via :func:`record_obs`
OBS_RECORDS: list[dict] = []


def record_obs(label: str, result) -> None:
    """Capture one run's counters/trace for the session's ``BENCH_obs.json``.

    Benches call this with a :class:`~repro.core.types.SliceLineResult`;
    the full ``repro.obs/v1`` document is stored under *label* and flushed
    to ``benchmarks/BENCH_obs.json`` when the pytest session ends.
    """
    OBS_RECORDS.append({"label": label, **run_to_dict(result)})


def pytest_sessionfinish(session, exitstatus):
    if not OBS_RECORDS:
        return
    out = pathlib.Path(__file__).parent / "BENCH_obs.json"
    out.write_text(json.dumps(OBS_RECORDS, indent=2) + "\n")
    print(f"\nwrote {len(OBS_RECORDS)} observability record(s) to {out}")
