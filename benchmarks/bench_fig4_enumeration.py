"""Figure 4: slice enumeration characteristics per dataset.

(a) Adult: good pruning, moderate slices per level, early termination;
(b) Covtype / KDD98 / USCensus: correlated or feature-rich datasets where
level caps are required and candidate counts stay close to valid-slice
counts (the pruning-effectiveness signature).
"""

import pytest

from repro.experiments import bench_config, format_table, run_sliceline

from conftest import bench_dataset, record_obs, run_once


def _enumerate(name, **overrides):
    bundle = bench_dataset(name)
    cfg = bench_config(name, bundle.num_rows, **overrides)
    result, report = run_sliceline(
        bundle.x0, bundle.errors, cfg, dataset=name, num_threads=4, trace=True
    )
    record_obs(f"fig4:{name}", result)
    return report


def test_fig4a_adult_enumeration(benchmark):
    report = run_once(
        benchmark, lambda: _enumerate("adult", max_level=None)
    )  # uncapped, like the paper
    print()
    print(format_table(report.rows(), title="Figure 4(a): Adult enumeration"))
    # early termination: well before the m=14 lattice floor
    assert report.levels[-1] < 14
    # the enumeration stays moderate at every level
    assert max(report.evaluated) < 100_000


@pytest.mark.parametrize("name", ["covtype", "uscensus", "kdd98"])
def test_fig4b_hard_datasets(benchmark, name):
    report = run_once(benchmark, lambda: _enumerate(name))
    print()
    print(format_table(report.rows(), title=f"Figure 4(b): {name} enumeration"))
    # pruning effectiveness: evaluated candidates stay close to valid slices
    # on deeper levels (the paper's central Figure 4 observation)
    for level, evaluated, valid, skipped in zip(
        report.levels, report.evaluated, report.valid,
        report.skipped_by_priority,
    ):
        if level >= 2 and evaluated > 0 and skipped == 0:
            assert valid >= 0.5 * evaluated


def test_fig4_benchmark_adult(benchmark):
    """Timed: Adult end-to-end enumeration (the Figure 4(a) workload)."""
    bundle = bench_dataset("adult")
    cfg = bench_config("adult", bundle.num_rows, max_level=None)

    from repro.core import slice_line

    result = benchmark.pedantic(
        lambda: slice_line(bundle.x0, bundle.errors, cfg, num_threads=4),
        rounds=2, iterations=1,
    )
    record_obs("fig4:adult:timed", result)
    assert result.top_slices
