"""Per-level compaction: measured end-to-end speedup behind an exactness gate.

Compaction (dropping one-hot columns no candidate references and rows that
matched no previous-level slice before each level's ``(X S^T) == L``
kernel) is a pure performance optimization, so this bench asserts only
what must always hold — *bitwise identical* output with compaction on and
off — and **reports** the measured numbers: end-to-end speedup plus the
per-level rows/cols-retained ratios and ``level{L}.evaluate`` kernel
seconds that explain it.  Speedup itself is not asserted (it depends on
how much the workload's lattice actually prunes); the shapes are recorded
to ``benchmarks/BENCH_compaction.json`` for comparison across machines.

Workloads: ``kdd98`` (the feature-rich replica — 100 features, widest
one-hot space, where column compaction matters most) and ``adult`` (the
paper's canonical debugging workload).
"""

import json
import os
import pathlib

import numpy as np

from repro.core import slice_line
from repro.experiments import bench_config

from conftest import bench_dataset, run_once

#: override with a comma-separated list (the CI smoke runs just ``adult``)
WORKLOADS = tuple(
    os.environ.get("BENCH_COMPACTION_WORKLOADS", "kdd98,adult").split(",")
)
OUT_PATH = pathlib.Path(__file__).parent / "BENCH_compaction.json"
#: timing samples per arm; arms are interleaved (on, off, on, off, ...) so
#: thermal drift hits both equally, and the min per arm is reported
SAMPLES = 2


def _assert_bitwise_identical(on, off, name):
    assert np.array_equal(on.top_stats, off.top_stats), name
    assert np.array_equal(on.top_slices_encoded, off.top_slices_encoded), name
    assert [s.predicates for s in on.top_slices] == [
        s.predicates for s in off.top_slices
    ], name


def _evaluate_seconds(result):
    """``level -> level{L}.evaluate span seconds`` for one traced run."""
    out = {}
    for record in result.counters.levels:
        span = result.trace.find(f"level{record.level}.evaluate")
        if span is not None:
            out[record.level] = span.elapsed_seconds
    return out


def _bench_workload(name):
    bundle = bench_dataset(name)
    cfg = bench_config(name, bundle.num_rows)

    def run(compaction, trace=None):
        return slice_line(
            bundle.x0, bundle.errors,
            cfg.with_overrides(compaction=compaction),
            num_threads=1, trace=trace,
        )

    # Traced pair: the exactness gate + per-level kernel spans.
    traced_on = run(True, trace=True)
    traced_off = run(False, trace=True)
    _assert_bitwise_identical(traced_on, traced_off, name)

    # Untraced pairs: the end-to-end timing, arms interleaved per round.
    # Sub-second workloads get extra rounds — the min is noise-dominated
    # otherwise — while the expensive ones stay at SAMPLES rounds.
    samples = {True: [], False: []}
    for compaction in (True, False):
        samples[compaction].append(run(compaction).total_seconds)
    rounds = SAMPLES if max(samples[True][0], samples[False][0]) > 2.0 else 5
    for _ in range(rounds - 1):
        for compaction in (True, False):
            samples[compaction].append(run(compaction).total_seconds)
    seconds_on = min(samples[True])
    seconds_off = min(samples[False])

    spans_on = _evaluate_seconds(traced_on)
    spans_off = _evaluate_seconds(traced_off)
    num_rows = traced_on.num_rows
    projected_cols = traced_on.counters.level(1).cols_alive
    levels = []
    for record in traced_on.counters.levels:
        if record.level < 2 or record.evaluated == 0:
            continue
        levels.append(
            {
                "level": record.level,
                "evaluated": record.evaluated,
                "rows_retained": record.rows_alive / num_rows,
                "cols_retained": (
                    record.cols_alive / projected_cols if projected_cols else 0.0
                ),
                "evaluate_seconds_on": spans_on.get(record.level),
                "evaluate_seconds_off": spans_off.get(record.level),
            }
        )
    return {
        "workload": name,
        "num_rows": num_rows,
        "num_onehot_columns": traced_on.num_onehot_columns,
        "projected_columns": projected_cols,
        "seconds_on": seconds_on,
        "seconds_off": seconds_off,
        "speedup": seconds_off / seconds_on if seconds_on else 0.0,
        "levels": levels,
    }


def test_compaction_speedup(benchmark):
    records = run_once(
        benchmark, lambda: [_bench_workload(name) for name in WORKLOADS]
    )
    document = {"schema": "repro.bench_compaction/v1", "workloads": records}
    OUT_PATH.write_text(json.dumps(document, indent=2) + "\n")

    print(f"\ncompaction speedup (exactness-gated), written to {OUT_PATH}")
    print(f"{'workload':<10} {'rows':>7} {'cols':>6} "
          f"{'off(s)':>8} {'on(s)':>8} {'speedup':>8}")
    for record in records:
        print(
            f"{record['workload']:<10} {record['num_rows']:>7} "
            f"{record['projected_columns']:>6} {record['seconds_off']:>8.3f} "
            f"{record['seconds_on']:>8.3f} {record['speedup']:>7.2f}x"
        )
        for level in record["levels"]:
            print(
                f"  level {level['level']}: rows {level['rows_retained']:.1%}"
                f" cols {level['cols_retained']:.1%}"
                f" evaluate {level['evaluate_seconds_off'] * 1e3:.1f}"
                f" -> {level['evaluate_seconds_on'] * 1e3:.1f} ms"
                f" ({level['evaluated']} candidates)"
            )
    assert len(records) == len(WORKLOADS)
    for record in records:
        assert record["levels"], f"{record['workload']} never reached level 2"
