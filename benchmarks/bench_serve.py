"""Serving-layer benchmark: cache-hit latency, warm starts, throughput.

The serving claims worth measuring (and gating):

* **exactness** — a cached exact hit and a warm-started cache miss both
  return results bitwise-identical to a cold :func:`repro.core.slice_line`
  run (the cache may only *skip* work, never change it);
* **cache-hit latency** — an exact-fingerprint resubmission skips
  enumeration entirely, so its submit-to-result latency must be a small
  fraction of the cold run;
* **throughput** — jobs/minute through the worker pool for a batch of
  distinct-fingerprint jobs, cold vs. a second identical batch that is
  served from cache.

Everything lands in ``benchmarks/BENCH_serve.json``
(``repro.bench_serve/v1``).
"""

import json
import pathlib
import time

import numpy as np

from repro.core import SliceLineConfig, slice_line
from repro.serve import JobSpec, SliceService

from conftest import bench_dataset, run_once

OUT_PATH = pathlib.Path(__file__).parent / "BENCH_serve.json"

#: a cached hit must be at least this much faster than the cold run
HIT_SPEEDUP_FLOOR = 5.0
#: distinct-config jobs per throughput batch
BATCH_JOBS = 6


def _spec(bundle, cfg, tenant="bench"):
    return JobSpec(tenant=tenant, x0=bundle.x0, errors=bundle.errors, config=cfg)


def _submit_and_time(service, spec):
    start = time.perf_counter()
    record = service.submit(spec)
    result = service.result(record.job_id, timeout=600)
    return time.perf_counter() - start, record, result


def _assert_bitwise_identical(cold, served):
    assert served.completed
    assert np.array_equal(cold.top_stats, served.top_stats)
    assert np.array_equal(cold.top_slices_encoded, served.top_slices_encoded)


def test_serve_cache_and_throughput(benchmark, tmp_path):
    bundle = bench_dataset("adult")
    cfg = SliceLineConfig(k=10, max_level=3)

    cold_oracle = run_once(
        benchmark, lambda: slice_line(bundle.x0, bundle.errors, cfg)
    )

    with SliceService(
        num_workers=2, workdir=str(tmp_path / "serve")
    ) as service:
        # Cold submit, then an exact-fingerprint resubmission.
        seconds_cold, _, result_cold = _submit_and_time(
            service, _spec(bundle, cfg)
        )
        seconds_hit, record_hit, result_hit = _submit_and_time(
            service, _spec(bundle, cfg)
        )
        assert record_hit.cache_hit
        _assert_bitwise_identical(cold_oracle, result_cold)
        _assert_bitwise_identical(cold_oracle, result_hit)

        # Warm start: same data, wider config, still bitwise == cold.
        wide_cfg = SliceLineConfig(k=12, max_level=3)
        seconds_warm, record_warm, result_warm = _submit_and_time(
            service, _spec(bundle, wide_cfg)
        )
        assert not record_warm.cache_hit
        assert record_warm.warm_seeds
        _assert_bitwise_identical(
            slice_line(bundle.x0, bundle.errors, wide_cfg), result_warm
        )

        cache_stats = service.cache.stats()

    # Throughput: one service per batch so the second batch is all-cold
    # too except it reuses the first batch's cache within its own run.
    batch_cfgs = [
        SliceLineConfig(k=4 + index, max_level=2) for index in range(BATCH_JOBS)
    ]
    with SliceService(
        num_workers=2, workdir=str(tmp_path / "serve-throughput")
    ) as service:
        start = time.perf_counter()
        records = [service.submit(_spec(bundle, c)) for c in batch_cfgs]
        assert service.wait(timeout=600)
        seconds_batch_cold = time.perf_counter() - start
        assert all(record.state == "completed" for record in records)

        start = time.perf_counter()
        records = [service.submit(_spec(bundle, c)) for c in batch_cfgs]
        assert service.wait(timeout=600)
        seconds_batch_cached = time.perf_counter() - start
        assert all(record.cache_hit for record in records)

    hit_speedup = seconds_cold / seconds_hit
    document = {
        "schema": "repro.bench_serve/v1",
        "workload": "adult",
        "num_rows": int(bundle.x0.shape[0]),
        "seconds_cold": seconds_cold,
        "seconds_cache_hit": seconds_hit,
        "cache_hit_speedup": hit_speedup,
        "seconds_warm_start": seconds_warm,
        "warm_seeds": len(record_warm.warm_seeds),
        "cache": cache_stats,
        "batch_jobs": BATCH_JOBS,
        "throughput_cold_jobs_per_min": BATCH_JOBS / seconds_batch_cold * 60,
        "throughput_cached_jobs_per_min": (
            BATCH_JOBS / seconds_batch_cached * 60
        ),
        "hit_speedup_floor": HIT_SPEEDUP_FLOOR,
    }
    OUT_PATH.write_text(json.dumps(document, indent=2) + "\n")

    print(
        f"\nserving benchmark (adult, {bundle.x0.shape[0]} rows), written to "
        f"{OUT_PATH}\n"
        f"  cold submit->result   {seconds_cold * 1e3:8.1f} ms\n"
        f"  cache hit             {seconds_hit * 1e3:8.1f} ms "
        f"({hit_speedup:.0f}x)\n"
        f"  warm start            {seconds_warm * 1e3:8.1f} ms "
        f"({len(record_warm.warm_seeds)} seeds)\n"
        f"  throughput cold       "
        f"{document['throughput_cold_jobs_per_min']:8.1f} jobs/min\n"
        f"  throughput cached     "
        f"{document['throughput_cached_jobs_per_min']:8.1f} jobs/min"
    )
    assert hit_speedup > HIT_SPEEDUP_FLOOR
    assert (
        document["throughput_cached_jobs_per_min"]
        > document["throughput_cold_jobs_per_min"]
    )
