"""Observability overhead: disabled tracing must cost < 2% of a run.

The no-op path (``NULL_TRACER`` + always-on counters) is the default for
every ``slice_line`` call, so its cost has to be provably negligible.  A
naive "time traced vs untraced and compare" assertion is flaky at the
percent level; instead we bound the overhead analytically:

    spans_per_run * measured_cost_per_noop_span  <  2% * untraced_runtime

``spans_per_run`` is counted exactly by running once with a real tracer,
and the per-span cost of the disabled path is measured on a tight loop —
both sides of the inequality are stable across machines.
"""

import time

from repro.core import slice_line
from repro.experiments import bench_config
from repro.obs import NULL_TRACER

from conftest import bench_dataset, run_once

OVERHEAD_BUDGET = 0.02


def _count_spans(bundle, cfg) -> int:
    """Spans a traced run of the workload opens (exact, not estimated)."""
    traced = slice_line(bundle.x0, bundle.errors, cfg, num_threads=1, trace=True)
    return traced.trace.num_spans


def _noop_span_cost(iterations: int = 200_000) -> float:
    """Measured seconds per disabled ``span()`` enter/exit round-trip."""
    start = time.perf_counter()
    for _ in range(iterations):
        with NULL_TRACER.span("overhead.probe"):
            pass
    return (time.perf_counter() - start) / iterations


def test_disabled_tracing_overhead(benchmark):
    bundle = bench_dataset("adult")
    cfg = bench_config("adult", bundle.num_rows, max_level=None)

    untraced = run_once(
        benchmark,
        lambda: slice_line(bundle.x0, bundle.errors, cfg, num_threads=1),
    )
    assert untraced.trace is None  # disabled mode attaches no trace

    # Time the same workload a couple more times and take the median so a
    # single noisy round cannot shrink the budget.
    samples = [untraced.total_seconds]
    for _ in range(2):
        samples.append(
            slice_line(bundle.x0, bundle.errors, cfg, num_threads=1).total_seconds
        )
    runtime = sorted(samples)[len(samples) // 2]

    spans = _count_spans(bundle, cfg)
    per_span = _noop_span_cost()
    overhead = spans * per_span

    print(
        f"\nobs overhead: {spans} spans/run x {per_span * 1e9:.0f} ns/noop-span"
        f" = {overhead * 1e3:.3f} ms vs {runtime * 1e3:.1f} ms runtime"
        f" ({overhead / runtime:.4%}, budget {OVERHEAD_BUDGET:.0%})"
    )
    assert overhead < OVERHEAD_BUDGET * runtime
