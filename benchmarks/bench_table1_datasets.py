"""Table 1: dataset characteristics (n, m, l, task).

Regenerates the dataset-characteristics table: measured n/m/l of every
registry dataset at benchmark scale next to the paper's full-scale
reference values.  The schema invariants (m and l) must match the paper
exactly for the fully-sampled datasets.
"""

from repro.datasets import dataset_summary
from repro.datasets.registry import PAPER_CHARACTERISTICS
from repro.experiments import format_table

from conftest import BENCH_SCALES, bench_dataset, run_once


def test_table1_characteristics(benchmark):
    rows = []
    for name in ("adult", "covtype", "kdd98", "uscensus", "criteod21", "salaries"):
        bundle = bench_dataset(name)
        summary = dataset_summary(bundle)
        rows.append(
            {
                "dataset": name,
                "task": summary["task"],
                "n(bench)": summary["n"],
                "m": summary["m"],
                "l(bench)": summary["l"],
                "n(paper)": summary["paper_n"],
                "l(paper)": summary["paper_l"],
            }
        )
    print()
    print(format_table(rows, title="Table 1: dataset characteristics"))

    # schema invariants: m always matches the paper; l matches when the
    # sample is large enough to observe every code
    for row in rows:
        assert row["m"] == PAPER_CHARACTERISTICS[row["dataset"]][1]
    adult = next(r for r in rows if r["dataset"] == "adult")
    assert adult["l(bench)"] == 162
    salaries = next(r for r in rows if r["dataset"] == "salaries")
    assert salaries["l(bench)"] == 27


def test_bench_dataset_generation_speed(benchmark):
    """Timed: generating the Adult-like dataset at benchmark scale."""
    from repro.datasets import load_dataset

    benchmark(lambda: load_dataset("adult", scale=0.1, seed=1))
