"""Section 5.3: varying the minimum-support constraint sigma.

Sweeps sigma over [1e-4 n, 1e-1 n] with alpha=0.95, K=10, L=3.  Expected
shape (paper): scores stay similar for small sigma (the size term already
counteracts tiny slices) and drop for very large sigma (good slices fall
below support), while runtime grows substantially as sigma shrinks.
"""

import math

from repro.core import slice_line
from repro.experiments import bench_config, format_table

from conftest import bench_dataset, run_once

SIGMA_FRACTIONS = (1e-4, 1e-3, 1e-2, 1e-1)


def test_sec53_sigma_sweep(benchmark):
    bundle = bench_dataset("adult")
    n = bundle.num_rows
    def sweep():
        rows = []
        for fraction in SIGMA_FRACTIONS:
            sigma = max(1, math.ceil(n * fraction))
            cfg = bench_config("adult", n, k=10, max_level=3, sigma=sigma)
            result = slice_line(bundle.x0, bundle.errors, cfg, num_threads=4)
            top_score = result.top_slices[0].score if result.top_slices else 0.0
            rows.append(
                {
                    "sigma/n": fraction,
                    "sigma": sigma,
                    "top1_score": round(top_score, 4),
                    "num_found": len(result.top_slices),
                    "evaluated": result.total_evaluated,
                    "seconds": round(result.total_seconds, 3),
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(format_table(rows, title="Section 5.3: sigma sweep on adult"))

    # scores do not improve as sigma grows (constraint only removes slices)
    scores = [r["top1_score"] for r in rows]
    assert all(b <= a + 1e-9 for a, b in zip(scores, scores[1:]))
    # small sigma means more work: evaluated counts shrink as sigma grows
    evaluated = [r["evaluated"] for r in rows]
    assert evaluated[0] >= evaluated[-1]


def test_sec53_benchmark_small_sigma(benchmark):
    """Timed: the most expensive sweep point (sigma = 1e-3 n)."""
    bundle = bench_dataset("adult")
    sigma = max(1, math.ceil(bundle.num_rows * 1e-3))
    cfg = bench_config("adult", bundle.num_rows, k=10, max_level=3, sigma=sigma)
    result = benchmark.pedantic(
        lambda: slice_line(bundle.x0, bundle.errors, cfg, num_threads=4),
        rounds=2, iterations=1,
    )
    assert result is not None
