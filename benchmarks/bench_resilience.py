"""Resilience overhead: budgets-on (checkpointing off) must cost <= 2%.

Anytime budgets are meant to be left on in production, so their fault-free
cost has to be provably negligible.  Two gates, both against the same
``adult`` workload:

* **exactness** — a budgets-on run with generous (never-tripping) limits is
  bitwise identical to the budgets-off run (budget checks may only *stop*
  work, never change it);
* **overhead** — the measured end-to-end delta of the budgets-on arm
  (interleaved min-of-rounds, same protocol as ``bench_compaction``) must
  stay within ``OVERHEAD_BUDGET``.  Because a per-mille-level timing
  assertion is flaky on its own, the analytic bound of ``bench_obs`` style
  is checked too: checks-per-run x measured cost of one ``BudgetTracker``
  check must also fit the budget — the measured delta is *recorded*, the
  analytic bound is what must never fail.

Checkpoint-write cost is recorded per level for reference (checkpointing is
opt-in, so it has no overhead budget), and everything lands in
``benchmarks/BENCH_resilience.json``.
"""

import json
import pathlib
import time

import numpy as np

from repro.core import slice_line
from repro.experiments import bench_config
from repro.resilience import BudgetConfig, BudgetTracker

from conftest import bench_dataset, run_once

OVERHEAD_BUDGET = 0.02
OUT_PATH = pathlib.Path(__file__).parent / "BENCH_resilience.json"
#: interleaved timing rounds per arm (min is reported)
ROUNDS = 5

#: generous enough that no real workload trips them
NEVER_TRIPS = BudgetConfig(
    deadline_s=3600.0,
    max_candidates_per_level=10**9,
    max_memory_bytes=2**60,
)


def _assert_bitwise_identical(plain, budgeted):
    assert budgeted.completed and budgeted.budget_trip is None
    assert np.array_equal(plain.top_stats, budgeted.top_stats)
    assert np.array_equal(
        plain.top_slices_encoded, budgeted.top_slices_encoded
    )
    assert [s.predicates for s in plain.top_slices] == [
        s.predicates for s in budgeted.top_slices
    ]


def _checks_per_run(result) -> int:
    """Upper bound on BudgetTracker checks the workload performs.

    Per level: one deadline check at the loop top, one candidate-count
    check, one memory check, one post-evaluation trip poll; plus one
    deadline check per priority evaluation chunk (bounded by evaluated /
    priority_chunk + 1 per level).
    """
    checks = 0
    for record in result.counters.levels:
        checks += 4
        checks += record.evaluated // 8192 + 1
    return checks


def _budget_check_cost(iterations: int = 200_000) -> float:
    """Measured seconds per (deadline + candidates + memory) check triple."""
    tracker = BudgetTracker(NEVER_TRIPS)
    start = time.perf_counter()
    for i in range(iterations):
        tracker.check_deadline(2)
        tracker.check_candidates(2, 1000)
        tracker.check_memory(2, 10**6)
    return (time.perf_counter() - start) / iterations


def _checkpoint_costs(bundle, cfg, tmp_dir) -> list[dict]:
    """Per-level ``checkpoint.write`` span seconds for one traced run."""
    traced = slice_line(
        bundle.x0, bundle.errors, cfg,
        num_threads=1, trace=True, checkpoint_dir=str(tmp_dir),
    )
    out = []
    for span in traced.trace.iter_spans():
        if span.name == "checkpoint.write":
            out.append(
                {
                    "level": span.attrs.get("level"),
                    "seconds": span.elapsed_seconds,
                }
            )
    return out


def test_budget_overhead(benchmark, tmp_path):
    bundle = bench_dataset("adult")
    cfg = bench_config("adult", bundle.num_rows, max_level=None)

    def run(budgets=None):
        return slice_line(
            bundle.x0, bundle.errors, cfg, num_threads=1, budgets=budgets
        )

    # Exactness gate: never-tripping budgets change nothing.
    plain = run_once(benchmark, run)
    budgeted = run(NEVER_TRIPS)
    _assert_bitwise_identical(plain, budgeted)

    # Interleaved timing arms (min per arm, same as bench_compaction).
    samples = {"plain": [plain.total_seconds], "budgeted": []}
    samples["budgeted"].append(run(NEVER_TRIPS).total_seconds)
    for _ in range(ROUNDS - 1):
        samples["plain"].append(run().total_seconds)
        samples["budgeted"].append(run(NEVER_TRIPS).total_seconds)
    seconds_plain = min(samples["plain"])
    seconds_budgeted = min(samples["budgeted"])
    measured = seconds_budgeted / seconds_plain - 1.0

    # Analytic bound: checks/run x cost/check, the assertion that must hold.
    checks = _checks_per_run(plain)
    per_check = _budget_check_cost()
    analytic = checks * per_check / seconds_plain

    checkpoint_costs = _checkpoint_costs(bundle, cfg, tmp_path / "ckpt")

    document = {
        "schema": "repro.bench_resilience/v1",
        "workload": "adult",
        "num_rows": plain.num_rows,
        "seconds_plain": seconds_plain,
        "seconds_budgeted": seconds_budgeted,
        "measured_overhead": measured,
        "budget_checks_per_run": checks,
        "seconds_per_check": per_check,
        "analytic_overhead_bound": analytic,
        "overhead_budget": OVERHEAD_BUDGET,
        "checkpoint_writes": checkpoint_costs,
    }
    OUT_PATH.write_text(json.dumps(document, indent=2) + "\n")

    print(
        f"\nresilience overhead (budgets on, checkpointing off), written to "
        f"{OUT_PATH}\n"
        f"  plain    {seconds_plain * 1e3:8.1f} ms\n"
        f"  budgeted {seconds_budgeted * 1e3:8.1f} ms "
        f"(measured {measured:+.3%})\n"
        f"  analytic bound: {checks} checks x {per_check * 1e9:.0f} ns"
        f" = {checks * per_check * 1e6:.1f} us ({analytic:.5%},"
        f" budget {OVERHEAD_BUDGET:.0%})"
    )
    for cost in checkpoint_costs:
        print(
            f"  checkpoint.write level {cost['level']}:"
            f" {cost['seconds'] * 1e3:.2f} ms (opt-in)"
        )
    assert analytic < OVERHEAD_BUDGET
    # The measured delta is recorded for cross-machine comparison; a noisy
    # machine can push a 0.5 s workload past the percent level, so only a
    # loose sanity multiple is asserted end-to-end.
    assert seconds_budgeted < seconds_plain * (1.0 + 10 * OVERHEAD_BUDGET)
