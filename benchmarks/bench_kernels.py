"""Evaluation-kernel backends: measured speedup behind an exactness gate.

The pluggable kernels of :mod:`repro.linalg.kernels` (sparse CSR x CSC,
packed bitset, incremental parent-indicator) are pure performance
optimizations — every backend must produce *bitwise identical* slices and
statistics.  This bench asserts exactly that (the exactness gate: any
divergence fails the suite) and **reports** the measured numbers: end-to-
end seconds per backend plus the per-level ``level{L}.evaluate`` kernel
seconds and the backend each level actually chose, written to
``benchmarks/BENCH_kernels.json``.

Speedups are not asserted — they depend on the machine — but the JSON
records the level-2 kernel ratio on ``kdd98`` (696k candidates at this
bench scale), which is where the bitset path's advantage is largest.

Workloads: ``kdd98`` (feature-rich, widest one-hot space — the packed
table pays off most) and ``adult`` (the paper's canonical workload).
Override with ``BENCH_KERNELS_WORKLOADS=adult`` for the CI smoke run.
"""

import json
import os
import pathlib

import numpy as np

from repro.core import slice_line
from repro.experiments import bench_config

from conftest import bench_dataset, run_once

BACKENDS = ("sparse", "bitset", "incremental", "auto")

#: override with a comma-separated list (the CI smoke runs just ``adult``)
WORKLOADS = tuple(
    os.environ.get("BENCH_KERNELS_WORKLOADS", "kdd98,adult").split(",")
)
OUT_PATH = pathlib.Path(__file__).parent / "BENCH_kernels.json"
#: timing samples per arm; arms are interleaved (sparse, bitset, ... then
#: again) so thermal drift hits all equally, and the min per arm is kept
SAMPLES = 2


def _assert_bitwise_identical(ref, other, name):
    """The exactness gate: any backend divergence fails the bench."""
    assert np.array_equal(ref.top_stats, other.top_stats), name
    assert np.array_equal(ref.top_slices_encoded, other.top_slices_encoded), name
    assert [s.predicates for s in ref.top_slices] == [
        s.predicates for s in other.top_slices
    ], name


def _level_records(result):
    """``level -> (evaluate span seconds, chosen backend, candidates)``."""
    out = {}
    for record in result.counters.levels:
        if record.level < 2 or record.evaluated == 0:
            continue
        span = result.trace.find(f"level{record.level}.evaluate")
        out[record.level] = {
            "evaluate_seconds": span.elapsed_seconds if span else None,
            "backend_chosen": record.backend_chosen,
            "evaluated": record.evaluated,
            "cache_hits": record.cache_hits,
            "cache_misses": record.cache_misses,
        }
    return out


def _bench_workload(name):
    bundle = bench_dataset(name)
    cfg = bench_config(name, bundle.num_rows)

    def run(backend, trace=None):
        return slice_line(
            bundle.x0, bundle.errors,
            cfg.with_overrides(kernel_backend=backend),
            num_threads=1, trace=trace,
        )

    # Traced arms: the exactness gate + per-level kernel spans.
    traced = {backend: run(backend, trace=True) for backend in BACKENDS}
    for backend in BACKENDS[1:]:
        _assert_bitwise_identical(
            traced["sparse"], traced[backend], f"{name}:{backend}"
        )

    # Untraced arms, interleaved per round: end-to-end timing.  Sub-second
    # workloads get extra rounds so the min is not noise-dominated.
    samples = {backend: [] for backend in BACKENDS}
    for backend in BACKENDS:
        samples[backend].append(run(backend).total_seconds)
    rounds = SAMPLES if max(s[0] for s in samples.values()) > 2.0 else 5
    for _ in range(rounds - 1):
        for backend in BACKENDS:
            samples[backend].append(run(backend).total_seconds)

    sparse_seconds = min(samples["sparse"])
    arms = {}
    for backend in BACKENDS:
        seconds = min(samples[backend])
        arms[backend] = {
            "seconds": seconds,
            "speedup_vs_sparse": sparse_seconds / seconds if seconds else 0.0,
            "levels": _level_records(traced[backend]),
        }

    # The headline kernel ratio: sparse vs best alternative at each level.
    kernel_speedups = {}
    sparse_levels = arms["sparse"]["levels"]
    for level, record in sparse_levels.items():
        base = record["evaluate_seconds"]
        if base is None:
            continue
        best_backend, best_seconds = None, None
        for backend in BACKENDS[1:]:
            other = arms[backend]["levels"].get(level, {})
            seconds = other.get("evaluate_seconds")
            if seconds is not None and (best_seconds is None or seconds < best_seconds):
                best_backend, best_seconds = backend, seconds
        if best_seconds:
            kernel_speedups[level] = {
                "candidates": record["evaluated"],
                "sparse_seconds": base,
                "best_request": best_backend,
                "best_seconds": best_seconds,
                "speedup": base / best_seconds,
            }

    return {
        "workload": name,
        "num_rows": traced["sparse"].num_rows,
        "num_onehot_columns": traced["sparse"].num_onehot_columns,
        "projected_columns": traced["sparse"].counters.level(1).cols_alive,
        "arms": arms,
        "kernel_speedups": kernel_speedups,
    }


def test_kernel_backend_speedup(benchmark):
    records = run_once(
        benchmark, lambda: [_bench_workload(name) for name in WORKLOADS]
    )
    document = {"schema": "repro.bench_kernels/v1", "workloads": records}
    OUT_PATH.write_text(json.dumps(document, indent=2) + "\n")

    print(f"\nkernel backends (exactness-gated), written to {OUT_PATH}")
    for record in records:
        print(
            f"{record['workload']}: {record['num_rows']} rows, "
            f"{record['projected_columns']} projected cols"
        )
        for backend, arm in record["arms"].items():
            chosen = ",".join(
                f"L{level}={rec['backend_chosen']}"
                for level, rec in sorted(arm["levels"].items())
            )
            print(
                f"  {backend:<12} {arm['seconds']:>8.3f}s "
                f"({arm['speedup_vs_sparse']:>5.2f}x) {chosen}"
            )
        for level, rec in sorted(record["kernel_speedups"].items()):
            print(
                f"  level {level} kernel: {rec['candidates']} candidates, "
                f"{rec['sparse_seconds'] * 1e3:.1f} -> "
                f"{rec['best_seconds'] * 1e3:.1f} ms "
                f"({rec['speedup']:.2f}x via {rec['best_request']})"
            )
    assert len(records) == len(WORKLOADS)
    for record in records:
        assert record["arms"]["sparse"]["levels"], (
            f"{record['workload']} never reached level 2"
        )
