"""Streaming monitor throughput: rows/sec per tick, warm vs cold.

Drives two :class:`~repro.streaming.SliceMonitor` instances — one
warm-started, one cold — over the same replayed prediction-log stream and
records per-tick latency, window throughput (rows ranked per second), and
the enumeration work counters.  Results land in ``BENCH_stream.json`` so
the streaming trajectory accumulates alongside ``BENCH_obs.json``.

The stream uses constant-magnitude errors (every nonzero error is exactly
1/16): with uniform ``sm`` the Equation-3 bound discriminates by error
mass, which is the regime where seeding the previous winners actually
prunes parents before the pair join.  Warm and cold must still agree
bitwise on every tick — that is asserted, not assumed.

Run:  pytest benchmarks/bench_stream_throughput.py --benchmark-only -s
"""

import json
import pathlib

import numpy as np

from repro.core import SliceLineConfig
from repro.datasets import replay_batches
from repro.streaming import SliceMonitor

from conftest import run_once

NUM_ROWS = 40_000
BATCH_SIZE = 4_000
WINDOW = 4


def _stream():
    gen = np.random.default_rng(31)
    x0 = np.column_stack(
        [gen.integers(1, 5, size=NUM_ROWS) for _ in range(8)]
    ).astype(np.int64)
    errors = (gen.random(NUM_ROWS) < 0.08).astype(np.float64) / 16.0
    for f0, v0, f1, v1 in ((0, 1, 1, 2), (2, 3, 3, 1), (4, 2, 6, 4)):
        errors[(x0[:, f0] == v0) & (x0[:, f1] == v1)] = 1.0 / 16.0
    return x0, errors


def _drive(warm_start: bool):
    x0, errors = _stream()
    monitor = SliceMonitor(
        config=SliceLineConfig(k=3, sigma=max(32, BATCH_SIZE * WINDOW // 100)),
        window_size=WINDOW,
        policy="sliding",
        warm_start=warm_start,
    )
    ticks = []
    for batch in replay_batches(x0, errors, BATCH_SIZE):
        monitor.ingest(batch)
        tick = monitor.tick()
        ticks.append(
            {
                "tick": tick.index,
                "rows": tick.num_rows,
                "seconds": tick.seconds,
                "rows_per_second": tick.num_rows / tick.seconds,
                "evaluated_candidates": sum(
                    c.evaluated for c in tick.result.counters.levels
                ),
                "warm_hit_rate": (
                    tick.warm_start.hit_rate
                    if tick.warm_start is not None
                    else None
                ),
            }
        )
    return monitor, ticks


def test_stream_throughput_warm_vs_cold(benchmark):
    warm_monitor, warm_ticks = _drive(warm_start=True)
    cold_monitor, cold_ticks = run_once(benchmark, lambda: _drive(False))

    # exactness first: warm and cold tick results must be bitwise identical
    for wt, ct in zip(warm_monitor.ticks, cold_monitor.ticks):
        assert np.array_equal(wt.result.top_stats, ct.result.top_stats)

    warm_work = sum(t["evaluated_candidates"] for t in warm_ticks[1:])
    cold_work = sum(t["evaluated_candidates"] for t in cold_ticks[1:])
    assert warm_work < cold_work, (
        f"warm ticks evaluated {warm_work} candidates vs cold {cold_work}"
    )

    summary = {
        "num_rows": NUM_ROWS,
        "batch_size": BATCH_SIZE,
        "window_batches": WINDOW,
        "warm": {
            "ticks": warm_ticks,
            "evaluated_candidates_after_first_tick": warm_work,
            "mean_rows_per_second": float(
                np.mean([t["rows_per_second"] for t in warm_ticks])
            ),
        },
        "cold": {
            "ticks": cold_ticks,
            "evaluated_candidates_after_first_tick": cold_work,
            "mean_rows_per_second": float(
                np.mean([t["rows_per_second"] for t in cold_ticks])
            ),
        },
    }
    out = pathlib.Path(__file__).parent / "BENCH_stream.json"
    out.write_text(json.dumps(summary, indent=2) + "\n")
    print(
        f"\nwarm {summary['warm']['mean_rows_per_second']:,.0f} rows/s "
        f"({warm_work} candidates) vs cold "
        f"{summary['cold']['mean_rows_per_second']:,.0f} rows/s "
        f"({cold_work} candidates) -> {out.name}"
    )
