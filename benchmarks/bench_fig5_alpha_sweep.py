"""Figure 5: top-1 scores and sizes under varying alpha.

Sweeps alpha over the paper's grid {0.36 .. 0.99} with sigma = n/100 and
max level 3.  Expected shape: top-1 scores increase with alpha (the error
term gains weight) while top-1 sizes decrease (the size term loses
weight).
"""

import pytest

from repro.core import slice_line
from repro.experiments import bench_config, format_table
from repro.experiments.workloads import ALPHA_SWEEP_VALUES

from conftest import bench_dataset, run_once


def _sweep(name):
    bundle = bench_dataset(name)
    rows = []
    # the correlated dataset sweeps at L=2: low-alpha points weaken score
    # pruning drastically, and the laptop budget does not cover L=3 there
    max_level = 2 if name == "uscensus" else 3
    for alpha in ALPHA_SWEEP_VALUES:
        cfg = bench_config(name, bundle.num_rows, alpha=alpha, max_level=max_level)
        result = slice_line(bundle.x0, bundle.errors, cfg, num_threads=4)
        top = result.top_slices[0] if result.top_slices else None
        rows.append(
            {
                "alpha": alpha,
                "top1_score": round(top.score, 4) if top else None,
                "top1_size": top.size if top else 0,
                "seconds": round(result.total_seconds, 3),
            }
        )
    return rows


@pytest.mark.parametrize("name", ["adult", "uscensus"])
def test_fig5_alpha_sweep(benchmark, name):
    rows = run_once(benchmark, lambda: _sweep(name))
    print()
    print(format_table(rows, title=f"Figure 5: alpha sweep on {name}"))

    scores = [r["top1_score"] for r in rows if r["top1_score"] is not None]
    sizes = [r["top1_size"] for r in rows if r["top1_size"] > 0]
    # scores increase with alpha (allowing tiny numerical plateaus)
    assert all(b >= a - 1e-9 for a, b in zip(scores, scores[1:]))
    # sizes never increase with alpha
    assert all(b <= a for a, b in zip(sizes, sizes[1:]))


def test_fig5_benchmark_single_alpha(benchmark):
    """Timed: one sweep point (alpha=0.92) on the Adult-like dataset."""
    bundle = bench_dataset("adult")
    cfg = bench_config("adult", bundle.num_rows, alpha=0.92, max_level=3)
    result = benchmark.pedantic(
        lambda: slice_line(bundle.x0, bundle.errors, cfg, num_threads=4),
        rounds=2, iterations=1,
    )
    assert result.top_slices
