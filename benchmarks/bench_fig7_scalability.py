"""Figure 7: scalability with data size and parallelization strategy.

(a) row-wise replication of the USCensus-like dataset (1x..8x): runtime
grows near-linearly with mild deterioration (larger intermediates);
(b) MT-Ops vs MT-PFor vs simulated Dist-PFor on one evaluation round,
plus the analytic cluster cost model projecting the paper's 1+12-node
shape (MT-PFor ~2x over MT-Ops, Dist-PFor ~1.9x more).
"""

import time

import numpy as np

from repro.core import FeatureSpace, slice_line
from repro.core.basic import create_and_score_basic_slices
from repro.core.pairs import get_pair_candidates
from repro.datasets import replicate_dataset
from repro.distributed import ClusterCostModel, make_executor
from repro.distributed.simulate import WorkProfile
from repro.experiments import bench_config, format_table

from conftest import bench_dataset, run_once

REPLICATION_FACTORS = (1, 2, 4)


def test_fig7a_row_scalability(benchmark):
    bundle = bench_dataset("uscensus")
    rows = []
    base_seconds = None
    for factor in REPLICATION_FACTORS:
        x_rep, e_rep = replicate_dataset(
            bundle.x0, bundle.errors, row_factor=factor
        )
        # relative sigma preserves enumeration characteristics (paper setup;
        # the paper fixed b=4 on 112 vcores -- b=128 is the equivalent
        # constant factor for scipy's per-call overhead)
        cfg = bench_config("uscensus", x_rep.shape[0], max_level=2, block_size=128)
        started = time.perf_counter()
        result = slice_line(x_rep, e_rep, cfg, num_threads=4)
        elapsed = time.perf_counter() - started
        if base_seconds is None:
            base_seconds = elapsed
        rows.append(
            {
                "replication": f"{factor}x",
                "rows": x_rep.shape[0],
                "seconds": round(elapsed, 3),
                "ideal": round(base_seconds * factor, 3),
                "evaluated": result.total_evaluated,
            }
        )
    print()
    print(format_table(rows, title="Figure 7(a): scalability with rows"))
    run_once(benchmark, lambda: None)  # keep this table in --benchmark-only runs

    # replication preserves the enumeration (same slices evaluated)
    assert len({r["evaluated"] for r in rows}) == 1
    # runtime grows with data size, within a loose factor of ideal scaling
    assert rows[-1]["seconds"] > rows[0]["seconds"]
    assert rows[-1]["seconds"] < 6 * rows[-1]["ideal"] + 1.0


def _evaluation_round(bundle):
    space = FeatureSpace.from_matrix(bundle.x0)
    x = space.encode(bundle.x0)
    sigma = max(1, bundle.num_rows // 100)
    basic = create_and_score_basic_slices(x, bundle.errors, sigma, 0.95)
    fmap = np.searchsorted(space.ends, basic.selected_columns, side="right")
    candidates, _ = get_pair_candidates(
        basic.slices, basic.stats, 2,
        num_rows=bundle.num_rows, total_error=float(bundle.errors.sum()),
        sigma=sigma, alpha=0.95, topk_min_score=0.0, feature_map=fmap,
    )
    return x[:, basic.selected_columns].tocsr(), candidates


def test_fig7b_parallelization_strategies(benchmark):
    bundle = bench_dataset("uscensus")
    x_projected, candidates = _evaluation_round(bundle)
    rows = []
    reference = None
    for strategy, kwargs in [
        ("mt-ops", {"num_threads": 4}),
        ("mt-pfor", {"num_threads": 4, "block_size": 64}),
        ("dist-pfor", {"num_nodes": 4, "executors_per_node": 2}),
    ]:
        executor = make_executor(strategy, **kwargs)
        started = time.perf_counter()
        stats = executor.evaluate(x_projected, bundle.errors, candidates, 2, 0.95)
        elapsed = time.perf_counter() - started
        if reference is None:
            reference = stats
        assert np.allclose(stats, reference)
        rows.append({"strategy": strategy, "seconds(local)": round(elapsed, 4)})

    # cluster-shape projection via the cost model
    work = WorkProfile(serial_compute_seconds=60.0, slice_matrix_mb=2.0,
                       stats_mb=1.0, num_jobs=3)
    projected = ClusterCostModel().compare(work, num_threads=32)
    for row in rows:
        row["seconds(cluster model)"] = round(projected[row["strategy"]], 2)
    print()
    print(format_table(rows, title="Figure 7(b): parallelization strategies"))
    run_once(benchmark, lambda: None)  # keep this table in --benchmark-only runs

    # the paper's ordering holds in the cost model
    assert projected["mt-pfor"] < projected["mt-ops"]
    assert projected["dist-pfor"] < projected["mt-pfor"]
    # and the relative factors are in the reported ballpark
    assert 1.3 < projected["mt-ops"] / projected["mt-pfor"] < 3.5
    assert 1.2 < projected["mt-pfor"] / projected["dist-pfor"] < 4.0


def test_fig7_benchmark_mt_pfor(benchmark):
    """Timed: one MT-PFor evaluation round on the USCensus-like dataset."""
    bundle = bench_dataset("uscensus")
    x_projected, candidates = _evaluation_round(bundle)
    executor = make_executor("mt-pfor", num_threads=4, block_size=64)
    out = benchmark.pedantic(
        lambda: executor.evaluate(x_projected, bundle.errors, candidates, 2, 0.95),
        rounds=2, iterations=1,
    )
    assert out.shape[0] == candidates.shape[0]
