"""Section 5.4: ML-systems / baseline comparison data points.

The paper reports SliceLine (SystemDS) at 5.6s on Adult vs 200.4s for the
R implementation and >100s for SliceFinder's hand-crafted lattice search.
We regenerate the comparable local data points: exact SliceLine vs the
SliceFinder-style heuristic search vs the decision-tree slicer, on the
same Adult-like workload.  Expected shape: SliceLine is competitive or
faster while being exact; the heuristics are approximate (tree slices are
disjoint; SliceFinder terminates level-wise).
"""

import time

from repro.baselines import DecisionTreeSlicer, SliceFinderBaseline
from repro.core import slice_line
from repro.experiments import bench_config, format_table

from conftest import bench_dataset, run_once


def test_sec54_baseline_comparison(benchmark):
    bundle = bench_dataset("adult")
    cfg = bench_config("adult", bundle.num_rows, k=4, max_level=3)

    rows = []
    started = time.perf_counter()
    result = slice_line(bundle.x0, bundle.errors, cfg, num_threads=4)
    sliceline_seconds = time.perf_counter() - started
    sliceline_top = result.top_slices[0].score if result.top_slices else 0.0
    rows.append(
        {
            "system": "SliceLine (exact)",
            "seconds": round(sliceline_seconds, 2),
            "slices": len(result.top_slices),
            "best_score": round(sliceline_top, 4),
        }
    )

    started = time.perf_counter()
    finder = SliceFinderBaseline(k=4, max_level=3)
    accepted = finder.find(bundle.x0, bundle.errors)
    rows.append(
        {
            "system": "SliceFinder (heuristic)",
            "seconds": round(time.perf_counter() - started, 2),
            "slices": len(accepted),
            "best_score": "n/a (effect size)",
        }
    )

    started = time.perf_counter()
    leaves = DecisionTreeSlicer(max_depth=3, min_leaf_size=64, k=4).find(
        bundle.x0, bundle.errors
    )
    rows.append(
        {
            "system": "Decision tree (disjoint)",
            "seconds": round(time.perf_counter() - started, 2),
            "slices": len(leaves),
            "best_score": "n/a (leaf error)",
        }
    )
    print()
    print(format_table(rows, title="Section 5.4: baseline comparison (adult)"))
    run_once(benchmark, lambda: None)  # keep this table in --benchmark-only runs

    # SliceLine's score is exact-optimal: no baseline "slice" can beat it.
    # Verify against the decision tree's best leaf re-scored with Eq. 1.
    from repro.core.scoring import score_single

    total_error = float(bundle.errors.sum())
    for leaf in leaves:
        leaf_score = score_single(
            leaf.size, leaf.average_error * leaf.size,
            bundle.num_rows, total_error, cfg.alpha,
        )
        assert leaf_score <= sliceline_top + 1e-9


def test_sec54_benchmark_sliceline(benchmark):
    """Timed: SliceLine on the Section 5.4 Adult workload."""
    bundle = bench_dataset("adult")
    cfg = bench_config("adult", bundle.num_rows, k=4, max_level=3)
    result = benchmark.pedantic(
        lambda: slice_line(bundle.x0, bundle.errors, cfg, num_threads=4),
        rounds=2, iterations=1,
    )
    assert result is not None
