"""Durability overhead: journaling must cost < 5%, restarts must be fast.

The crash-durability layer (``repro.serve.durability``) is meant to be
left on for any long-lived deployment, so its fault-free cost has to be
small and its recovery path has to be cheap.  Three measurements, two of
them gated:

* **journaling overhead** — the same submit-to-result workload through a
  ``state_dir``-backed service (fsync'd WAL appends + durable cache
  spill) vs. the in-memory service.  Interleaved min-of-rounds, gated at
  ``OVERHEAD_BUDGET`` (< 5%).  Both arms must stay bitwise identical to
  the cold :func:`repro.core.slice_line` oracle — durability may only
  *persist* work, never change it.
* **cold-restart recovery** — seconds to construct a service over a
  state dir holding a warm cache and a full journal (WAL replay + spill
  reload).  Recorded, and gated indirectly: the resubmission after
  restart must be a zero-enumeration cache hit, bitwise equal to the
  pre-crash result.

Everything lands in ``benchmarks/BENCH_durability.json``
(``repro.bench_durability/v1``).
"""

import json
import pathlib
import time

import numpy as np

from repro.core import SliceLineConfig, slice_line
from repro.serve import JobSpec, SliceService

from conftest import BENCH_SCALES, bench_dataset, run_once

OUT_PATH = pathlib.Path(__file__).parent / "BENCH_durability.json"

#: journaling may cost at most this fraction of the submit->result time
OVERHEAD_BUDGET = 0.05
#: interleaved timing rounds per arm (min is reported)
ROUNDS = 5
#: distinct-config jobs persisted before the restart measurement
WARM_JOBS = 6

WORKLOAD = "covtype"
CFG = SliceLineConfig(k=8, max_level=2)


def _spec(cfg=CFG):
    return JobSpec(
        tenant="bench",
        dataset=WORKLOAD,
        scale=BENCH_SCALES[WORKLOAD],
        config=cfg,
    )


def _submit_and_time(service, spec):
    start = time.perf_counter()
    record = service.submit(spec)
    result = service.result(record.job_id, timeout=600)
    return time.perf_counter() - start, record, result


def _assert_bitwise_identical(oracle, served):
    assert served.completed
    assert np.array_equal(oracle.top_stats, served.top_stats)
    assert np.array_equal(
        oracle.top_slices_encoded, served.top_slices_encoded
    )


def test_durability_overhead_and_recovery(benchmark, tmp_path):
    bundle = bench_dataset(WORKLOAD)
    oracle = run_once(
        benchmark, lambda: slice_line(bundle.x0, bundle.errors, CFG)
    )

    # -- journaling overhead: interleaved rounds, fresh state per round --
    seconds_off, seconds_on = [], []
    for round_index in range(ROUNDS):
        with SliceService(
            num_workers=1,
            workdir=str(tmp_path / f"plain-{round_index}"),
        ) as service:
            seconds, _, result = _submit_and_time(service, _spec())
            seconds_off.append(seconds)
            _assert_bitwise_identical(oracle, result)
        with SliceService(
            num_workers=1,
            state_dir=str(tmp_path / f"durable-{round_index}"),
        ) as service:
            seconds, _, result = _submit_and_time(service, _spec())
            seconds_on.append(seconds)
            _assert_bitwise_identical(oracle, result)

    min_off, min_on = min(seconds_off), min(seconds_on)
    overhead = (min_on - min_off) / min_off
    assert overhead < OVERHEAD_BUDGET, (
        f"journaling overhead {overhead:.2%} exceeds "
        f"{OVERHEAD_BUDGET:.0%} (WAL-off {min_off:.3f}s, "
        f"WAL-on {min_on:.3f}s)"
    )

    # -- cold-restart recovery over a warm cache + full journal ----------
    state = str(tmp_path / "restart-state")
    warm_cfgs = [
        SliceLineConfig(k=4 + index, max_level=2) for index in range(WARM_JOBS)
    ]
    with SliceService(num_workers=1, state_dir=state) as service:
        for cfg in warm_cfgs:
            service.submit(_spec(cfg))
        assert service.wait(timeout=600)
        pre_crash = service.cache.stats()

    start = time.perf_counter()
    recovered = SliceService(num_workers=1, state_dir=state)
    seconds_recovery = time.perf_counter() - start
    try:
        seconds_hit, record_hit, result_hit = _submit_and_time(
            recovered, _spec(warm_cfgs[0])
        )
        assert record_hit.cache_hit, "post-restart resubmission re-ran"
        stats = recovered.stats()
        assert not stats["durability"]["recovery_errors"]
        assert not stats["durability"]["wal_quarantined"]
    finally:
        recovered.shutdown()
    oracle_first = slice_line(bundle.x0, bundle.errors, warm_cfgs[0])
    _assert_bitwise_identical(oracle_first, result_hit)

    document = {
        "schema": "repro.bench_durability/v1",
        "workload": WORKLOAD,
        "num_rows": int(bundle.x0.shape[0]),
        "rounds": ROUNDS,
        "seconds_wal_off": min_off,
        "seconds_wal_on": min_on,
        "journal_overhead": overhead,
        "overhead_budget": OVERHEAD_BUDGET,
        "restart": {
            "warm_jobs": WARM_JOBS,
            "wal_records_replayed": stats["durability"]["wal_replayed"],
            "cache_entries_recovered": pre_crash["entries"],
            "seconds_recovery": seconds_recovery,
            "seconds_cache_hit_after_restart": seconds_hit,
        },
    }
    OUT_PATH.write_text(json.dumps(document, indent=2) + "\n")

    print(
        f"\ndurability benchmark ({WORKLOAD}, {bundle.x0.shape[0]} rows), "
        f"written to {OUT_PATH}\n"
        f"  submit->result WAL off  {min_off * 1e3:8.1f} ms\n"
        f"  submit->result WAL on   {min_on * 1e3:8.1f} ms "
        f"({overhead:+.2%}, budget {OVERHEAD_BUDGET:.0%})\n"
        f"  cold-restart recovery   {seconds_recovery * 1e3:8.1f} ms "
        f"({pre_crash['entries']} cached result(s), "
        f"{stats['durability']['wal_replayed']} WAL record(s))\n"
        f"  cache hit after restart {seconds_hit * 1e3:8.1f} ms"
    )
