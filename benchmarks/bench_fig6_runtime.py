"""Figure 6: local end-to-end runtime and the hybrid block-size trade-off.

(a) end-to-end runtime per dataset with Section 5 defaults;
(b) block-size sweep on the USCensus-like dataset: moderate blocks share
scans across slices and beat both extremes (b=1 task-parallel and very
large b data-parallel with oversized intermediates).
"""

import time

import numpy as np
import pytest

from repro.core import FeatureSpace, evaluate_slices, slice_line
from repro.core.basic import create_and_score_basic_slices
from repro.core.pairs import get_pair_candidates
from repro.experiments import bench_config, format_table

from conftest import bench_dataset, run_once

DATASETS = ("salaries", "adult", "covtype", "uscensus", "kdd98")
BLOCK_SIZES = (1, 16, 64, 256)


def test_fig6a_end_to_end_runtime(benchmark):
    rows = []
    for name in DATASETS:
        bundle = bench_dataset(name)
        cfg = bench_config(name, bundle.num_rows)
        started = time.perf_counter()
        result = slice_line(bundle.x0, bundle.errors, cfg, num_threads=4)
        rows.append(
            {
                "dataset": name,
                "n": bundle.num_rows,
                "evaluated": result.total_evaluated,
                "top1": round(result.top_slices[0].score, 3)
                if result.top_slices else None,
                "seconds": round(time.perf_counter() - started, 2),
            }
        )
    print()
    print(format_table(rows, title="Figure 6(a): end-to-end runtime"))
    assert all(r["seconds"] > 0 for r in rows)
    run_once(benchmark, lambda: None)  # keep this table in --benchmark-only runs


def _fixed_candidate_round(max_candidates: int = 4096):
    """One fixed level-2 evaluation round for the block-size sweep."""
    bundle = bench_dataset("uscensus")
    space = FeatureSpace.from_matrix(bundle.x0)
    x = space.encode(bundle.x0)
    sigma = max(1, bundle.num_rows // 100)
    basic = create_and_score_basic_slices(x, bundle.errors, sigma, 0.95)
    fmap = np.searchsorted(space.ends, basic.selected_columns, side="right")
    candidates, _ = get_pair_candidates(
        basic.slices, basic.stats, 2,
        num_rows=bundle.num_rows, total_error=float(bundle.errors.sum()),
        sigma=sigma, alpha=0.95, topk_min_score=0.0, feature_map=fmap,
    )
    return (
        x[:, basic.selected_columns].tocsr(),
        bundle.errors,
        candidates[:max_candidates],
    )


def test_fig6b_block_size_sweep(benchmark):
    """Sweep the hybrid block size over one fixed evaluation round.

    The sweep runs on a fixed set of level-2 candidates (rather than
    end-to-end) so the pure task-parallel extreme (b=1) stays affordable:
    its per-slice call overhead is exactly the effect the figure studies.
    """
    x_projected, errors, candidates = _fixed_candidate_round()
    rows = []
    for block_size in BLOCK_SIZES:
        started = time.perf_counter()
        stats = evaluate_slices(
            x_projected, errors, candidates, 2, 0.95, block_size=block_size
        )
        rows.append(
            {
                "block_size": block_size,
                "seconds": round(time.perf_counter() - started, 3),
                "evaluated": stats.shape[0],
            }
        )
    print()
    print(format_table(rows, title="Figure 6(b): block-size sweep (uscensus)"))
    run_once(benchmark, lambda: None)  # keep this table in --benchmark-only runs

    seconds = {r["block_size"]: r["seconds"] for r in rows}
    # scan sharing: some moderate block beats pure task-parallel b=1
    moderate_best = min(seconds[b] for b in (16, 64, 256))
    assert moderate_best <= seconds[1]
    # every configuration computes the same work
    assert len({r["evaluated"] for r in rows}) == 1


@pytest.mark.parametrize("block_size", [1, 64])
def test_fig6b_benchmark_blocks(benchmark, block_size):
    """Timed: the two ends of the hybrid execution spectrum."""
    x_projected, errors, candidates = _fixed_candidate_round(
        max_candidates=1024
    )
    stats = benchmark.pedantic(
        lambda: evaluate_slices(
            x_projected, errors, candidates, 2, 0.95, block_size=block_size
        ),
        rounds=2, iterations=1,
    )
    assert stats.shape[0] == candidates.shape[0]
